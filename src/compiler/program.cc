#include "src/compiler/program.h"

#include <algorithm>

#include "src/common/str.h"

namespace dbtoaster::compiler {

std::string MapDecl::ToString() const {
  std::string s = name + "[";
  for (size_t i = 0; i < key_names.size(); ++i) {
    if (i) s += ", ";
    s += key_names[i] + ":" + TypeName(key_types[i]);
  }
  s += "] : " + std::string(TypeName(value_type));
  if (is_extreme) {
    s += StrFormat(" (%s multiset)", sql::AggKindName(extreme_kind));
  }
  if (definition) s += " := " + definition->ToString();
  if (needs_init) s += "  [init-on-access]";
  return s;
}

std::string Statement::ToString() const {
  std::string s;
  switch (kind) {
    case Kind::kDelta:
    case Kind::kReeval: {
      s = target + "[" + Join({target_keys.begin(), target_keys.end()}, ", ") +
          "]";
      s += kind == Kind::kDelta ? " += " : " := ";
      s += rhs->ToString();
      if (!lhs_iterate.empty()) {
        s += "  (foreach live ";
        for (size_t i = 0; i < lhs_iterate.size(); ++i) {
          if (i) s += ", ";
          s += target_keys[lhs_iterate[i]];
        }
        s += ")";
      }
      break;
    }
    case Kind::kExtreme: {
      s = target + "[" +
          Join({target_keys.begin(), target_keys.end()}, ", ") + "]";
      s += extreme_sign > 0 ? " <<add>> " : " <<remove>> ";
      s += extreme_value->ToString();
      if (extreme_guard) s += " when " + extreme_guard->ToString();
      break;
    }
  }
  return s;
}

std::string Trigger::Signature() const {
  return StrFormat("on_%s_%s(%s)",
                   event == EventKind::kInsert ? "insert" : "delete",
                   relation.c_str(),
                   Join({params.begin(), params.end()}, ", ").c_str());
}

std::string Trigger::ToString() const {
  std::string s = Signature() + " {\n";
  for (const Statement& st : statements) {
    s += "  " + st.ToString() + ";\n";
  }
  s += "}";
  return s;
}

const MapDecl* Program::FindMap(const std::string& name) const {
  for (const MapDecl& m : maps) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const Trigger* Program::FindTrigger(const std::string& relation,
                                    EventKind kind) const {
  for (const Trigger& t : triggers) {
    if (t.relation == relation && t.event == kind) return &t;
  }
  return nullptr;
}

const ViewSpec* Program::FindView(const std::string& name) const {
  for (const ViewSpec& v : views) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

std::string Program::ToString() const {
  std::string s = "-- maps --\n";
  for (const MapDecl& m : maps) s += m.ToString() + "\n";
  s += "\n-- triggers --\n";
  for (const Trigger& t : triggers) s += t.ToString() + "\n";
  s += "\n-- views --\n";
  for (const ViewSpec& v : views) {
    s += v.name + "(" + Join(v.key_column_names, ", ");
    if (!v.key_column_names.empty()) s += ", ";
    std::vector<std::string> cols;
    for (const ViewColumn& c : v.columns) cols.push_back(c.name);
    s += Join(cols, ", ") + ")";
    if (v.hybrid) s += "  [hybrid]";
    s += "\n";
  }
  return s;
}

std::string Program::TraceTable() const {
  // Merge "+R" / "-R" rows whose other fields match into "±R".
  struct Merged {
    TraceRow row;
    bool plus = false, minus = false;
  };
  std::vector<Merged> merged;
  for (const TraceRow& r : trace) {
    bool is_plus = !r.event.empty() && r.event[0] == '+';
    std::string rel = r.event.substr(1);
    bool found = false;
    for (Merged& m : merged) {
      std::string mrel = m.row.event.substr(1);
      if (m.row.level == r.level && mrel == rel && m.row.target == r.target &&
          m.row.query == r.query) {
        if (is_plus) m.plus = true;
        else m.minus = true;
        found = true;
        break;
      }
    }
    if (!found) {
      Merged m;
      m.row = r;
      (is_plus ? m.plus : m.minus) = true;
      merged.push_back(std::move(m));
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Merged& a, const Merged& b) {
    if (a.row.level != b.row.level) return a.row.level < b.row.level;
    return a.row.event.substr(1) < b.row.event.substr(1);
  });

  std::string s;
  s += StrFormat("%-6s %-6s %-10s %-48s %s\n", "level", "event", "target",
                 "query to compile", "delta code / maps introduced");
  s += std::string(150, '-') + "\n";
  for (const Merged& m : merged) {
    std::string ev = (m.plus && m.minus)
                         ? ("±" + m.row.event.substr(1))
                         : m.row.event;
    s += StrFormat("%-6d %-6s %-10s %-48s %s\n", m.row.level, ev.c_str(),
                   m.row.target.c_str(), m.row.query.c_str(),
                   m.row.delta_code.c_str());
    for (const auto& [name, defn] : m.row.new_maps) {
      s += StrFormat("%-6s %-6s %-10s %-48s new map %s := %s\n", "", "", "",
                     "", name.c_str(), defn.c_str());
    }
  }
  return s;
}

}  // namespace dbtoaster::compiler
