// SQL -> ring calculus translation.
//
// A SELECT statement becomes one ring expression per aggregate:
//   AggSum(group vars, Rel_1 · ... · Rel_n · indicators · {value term})
// Top-level equality conjuncts between columns unify variables (this is what
// gives joins their shared-variable form); remaining predicates become 0/1
// indicator expressions (OR via inclusion–exclusion, NOT via 1 - e).
// Scalar subqueries become placeholder map reads ("$sub<i>.<agg>") keyed by
// their correlation variables; the compile driver materialises them.
#ifndef DBTOASTER_COMPILER_TRANSLATE_H_
#define DBTOASTER_COMPILER_TRANSLATE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/ring/expr.h"
#include "src/sql/ast.h"

namespace dbtoaster::compiler {

/// One aggregate of a translated query.
struct TranslatedAggregate {
  std::string label;            ///< e.g. "SUM((b.price * b.volume))"
  sql::AggKind kind = sql::AggKind::kSum;
  Type value_type = Type::kInt;

  /// Ring form: AggSum(group vars, body). Null for MIN/MAX aggregates.
  /// For LEFT JOIN queries this is the *matched* (inner-join) part.
  ring::ExprPtr expr;

  /// LEFT JOIN queries: body of the per-(group, join-key) left-side
  /// aggregate W (left atoms · left predicates · value), used by the
  /// compile driver for the negated-domain (unmatched) branch. Null when
  /// the query has no LEFT JOIN.
  ring::ExprPtr unmatched_body;

  /// MIN/MAX (ordered-multiset) path.
  bool is_extreme = false;
  std::string extreme_relation;       ///< the single FROM relation
  std::vector<std::string> extreme_rel_vars;  ///< its column variables
  ring::TermPtr extreme_value;        ///< aggregated value over those vars
  ring::ExprPtr extreme_guard;        ///< 0/1 indicator (may be null)
};

struct TranslatedQuery;

/// A scalar subquery hoisted out of a predicate.
struct TranslatedSubquery {
  std::unique_ptr<TranslatedQuery> inner;
  std::vector<std::string> corr_vars;  ///< outer variables it depends on
  std::string placeholder;             ///< "$<query>_sub<i>"
};

/// LEFT [OUTER] JOIN description: the pieces of the standard
/// outer-join-to-union rewrite
///   A ⟕ B  =  (A ⋈ B)  ∪  (A where no matching B) × {B-columns := NULL}
/// expressed over the calculus. The compile driver maintains a per-join-key
/// match-count map cnt[j] = Σ B·(right preds) and derives the unmatched
/// branch as W[g, j] · [cnt[j] = 0], where W is the left-side aggregate.
struct TranslatedLeftJoin {
  std::string right_relation;               ///< the left-joined relation
  std::vector<std::string> right_vars;      ///< its column vars (post-rename)
  std::vector<std::string> join_vars;       ///< vars shared with the left side
  std::vector<ring::ExprPtr> right_preds;   ///< ON preds over right vars only
  ring::ExprPtr cnt_body;                   ///< Rel(right) · right_preds
  ring::ExprPtr unmatched_domain_body;      ///< left atoms · left preds
};

/// Result of translating one SELECT statement.
struct TranslatedQuery {
  std::string name;
  std::string sql;

  std::vector<std::string> group_vars;  ///< ring variables of the group keys
  std::vector<std::string> key_column_names;
  std::vector<Type> key_types;

  std::vector<TranslatedAggregate> aggregates;

  /// View output columns; aggregate reads use placeholder map names
  /// "$<query>_agg<i>" resolved by the compile driver.
  std::vector<ViewColumn> columns;

  std::vector<TranslatedSubquery> subqueries;
  bool hybrid = false;                 ///< true iff subqueries are present

  /// Present iff the query has a LEFT JOIN whose unmatched branch is live
  /// (WHERE predicates over right-side columns degrade it to an inner join).
  std::unique_ptr<TranslatedLeftJoin> left_join;

  /// HAVING guard: a 0/1 ring expression over the group variables and
  /// aggregate placeholder reads ("$<query>_agg<i>"), applied when the view
  /// is read. Null when absent.
  ring::ExprPtr having;

  /// For grouped queries: the COUNT query over the same joins/filters whose
  /// live keys enumerate the view's groups (the domain map definition).
  ring::ExprPtr domain_expr;

  /// All base relations this query (incl. subqueries) depends on.
  std::set<std::string> relations;

  /// Variable types inferred during translation (query vars + corr vars).
  ring::VarTypes var_types;
};

/// Translate `stmt` against `catalog`. `name` seeds placeholder/map naming.
/// `var_counter` keeps generated variables unique across a whole program.
Result<std::unique_ptr<TranslatedQuery>> Translate(const sql::SelectStmt& stmt,
                                                   const Catalog& catalog,
                                                   const std::string& name,
                                                   int* var_counter);

}  // namespace dbtoaster::compiler

#endif  // DBTOASTER_COMPILER_TRANSLATE_H_
