// Static verifier + dataflow analysis over lowered tir::Modules.
//
// tir::Lower is trusted by both backends (the C++ generator and the trigger
// interpreter) to produce sound modules: correctly typed map accesses,
// correctly masked one-sided statements, honest batch-analysis flags. A bad
// sign mask or a stale map arity is otherwise only caught — if at all — by
// the runtime differential harness. Verify() proves, per module:
//
//   1. def-before-use: every variable a statement reads is bound by the
//      trigger parameters, the reserved sign variable, LHS iteration, or an
//      earlier factor of the statement's own access plan; every target key
//      is bound; the reserved __sign variable is never re-bound.
//   2. lane/type soundness: every relation/map atom and every term-level
//      map read matches the catalog- or declaration-recorded arity and
//      column lanes; no statement stores a double-lane value into an
//      int-valued map; __sign flows only into sign-polymorphic positions
//      (additive delta-value chains, comparison thresholds such as the
//      zero-crossing indicators LEFT JOIN corrections compile to, and
//      ExtremeMap::update direction) — never into map-read keys, division
//      denominators, scalar-function arguments or lift definitions.
//   3. sign-mask soundness: a map written on only one event sign (by a
//      masked kInsertOnly/kDeleteOnly statement without its counterpart)
//      must not feed state that a both-signs statement or a view reads.
//   4. shard-plan proof: the vectorizable/parallel_safe/partition_cols
//      claims carried on each trigger are re-derived from the statements
//      and must hold; under a parallel plan every routed map write covers
//      its trigger's partition column. (Cross-trigger key-position routing
//      is a backend choice with a safe fallback, not an IR invariant.)
//   5. dataflow liveness: maps written but reachable by no view read (a
//      reverse-reachability fixpoint through statements and init-on-access
//      definitions), and statements whose delta provably cancels, are dead
//      (warnings; errors under strict verification).
//
// The dbtc driver runs Verify() hard-fail between tir::Lower and both
// backends and exposes it as `dbtc --verify[=strict]`; codegen::GenerateCpp
// refuses unverified modules, and runtime::Engine asserts verification in
// debug builds.
#ifndef DBTOASTER_COMPILER_TIR_VERIFY_H_
#define DBTOASTER_COMPILER_TIR_VERIFY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compiler/tir.h"

namespace dbtoaster::tir {

/// One verifier finding, anchored to a trigger statement when possible.
struct Diagnostic {
  enum class Severity : uint8_t { kWarning, kError };

  Severity severity = Severity::kError;
  std::string check;     ///< "def-use", "type", "sign-mask", "shard", "liveness"
  std::string relation;  ///< trigger relation; empty for module-level findings
  int stmt = -1;         ///< statement index within the trigger; -1 = trigger/module level
  std::string message;

  /// "<relation>:stmt <n>: error: [check] message" — the relation/statement
  /// position plays the role the parser's "line:column" plays for SQL text;
  /// drivers prefix the input file name.
  std::string ToString() const;
};

struct VerifyOptions {
  /// Promote warnings (dead state, cancelling deltas) to errors.
  bool strict = false;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  size_t num_errors = 0;
  size_t num_warnings = 0;

  bool ok(bool strict = false) const {
    return num_errors == 0 && (!strict || num_warnings == 0);
  }

  /// All diagnostics, one per line, each prefixed with `file` when given.
  std::string ToString(const std::string& file = "") const;
};

/// Run every check over a lowered module. Never mutates the module; safe to
/// call from backend constructors.
VerifyResult Verify(const Module& module, const VerifyOptions& options = {});

/// Hard-fail form for pipeline gates: OK when the module verifies, else an
/// Internal status whose message lists every diagnostic.
Status VerifyOrError(const Module& module, const std::string& file = "",
                     bool strict = false);

}  // namespace dbtoaster::tir

#endif  // DBTOASTER_COMPILER_TIR_VERIFY_H_
