// The recursive compilation driver (the paper's §3 algorithm).
//
// For every registered query:
//   1. translate SQL to ring expressions (translate.h);
//   2. register each aggregate as a level-1 map;
//   3. repeatedly: for every map M and every event ±R over a relation in
//      M's definition, derive Δ±R(M) (delta.h), simplify it (simplify.h),
//      materialise the remaining AggSum/relation factors as new maps
//      (deduplicated structurally — "map sharing"), and emit a trigger
//      statement M[keys] += rhs;
//   4. until no new maps appear (definitions without relation atoms have
//      constant-time deltas).
//
// Queries containing scalar subqueries take the hybrid path: inner
// aggregates are compiled incrementally as above, while the outer aggregate
// is re-evaluated per event over the maintained maps (a := statement) —
// still asymptotically cheaper than base-table re-evaluation.
#ifndef DBTOASTER_COMPILER_COMPILE_H_
#define DBTOASTER_COMPILER_COMPILE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/status.h"
#include "src/compiler/program.h"
#include "src/compiler/translate.h"

namespace dbtoaster::compiler {

/// Compiles one or more standing queries against a shared catalog into a
/// single trigger Program (maps are shared across queries).
class Compiler {
 public:
  explicit Compiler(Catalog catalog) : catalog_(std::move(catalog)) {}

  /// Register a standing query. `name` must be unique; it names the view.
  Status AddQuery(const std::string& name, const std::string& sql);
  Status AddQuery(const std::string& name, const sql::SelectStmt& stmt);

  /// Run recursive compilation over all registered queries.
  Result<Program> Compile();

  const Catalog& catalog() const { return catalog_; }

 private:
  Catalog catalog_;
  struct Pending {
    std::string name;
    std::unique_ptr<TranslatedQuery> translated;
  };
  std::vector<Pending> queries_;
  int var_counter_ = 0;
};

/// Convenience: compile a single query in one call.
Result<Program> CompileQuery(const Catalog& catalog, const std::string& name,
                             const std::string& sql);

}  // namespace dbtoaster::compiler

#endif  // DBTOASTER_COMPILER_COMPILE_H_
