#include "src/compiler/tir.h"

#include <algorithm>
#include <map>

#include "src/common/str.h"

namespace dbtoaster::tir {

using compiler::MapDecl;
using compiler::Program;
using compiler::Statement;
using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

namespace {

// ---- sign unification ----------------------------------------------------
//
// The insert and delete triggers produced by recursive compilation differ
// only in the sign of the event multiplicity: whole RHS negations, negated
// leading constants, or negated comparison constants (the LEFT JOIN
// right-relation case). Unify(a_insert, b_delete) rebuilds one expression
// over kSignVar such that substituting +1 yields a and -1 yields b; nullptr
// when the pair is not sign-symmetric.

TermPtr SignTerm() { return Term::Var(kSignVar); }

/// value = c * sign reproduces c on insert and -c on delete.
TermPtr SignedConst(const Value& insert_value) {
  return Term::Mul(Term::Const(insert_value), SignTerm());
}

bool NumericNegation(const Value& a, const Value& b) {
  return a.is_numeric() && b.is_numeric() &&
         Value::Compare(a, Value::Neg(b)) == 0;
}

TermPtr UnifyTerm(const TermPtr& a, const TermPtr& b) {
  if (a == nullptr || b == nullptr) return nullptr;
  if (ring::TermEquals(*a, *b)) return a;
  if (a->kind != b->kind) return nullptr;
  switch (a->kind) {
    case Term::Kind::kConst:
      if (NumericNegation(a->constant, b->constant)) {
        return SignedConst(a->constant);
      }
      return nullptr;
    case Term::Kind::kAdd:
    case Term::Kind::kSub:
    case Term::Kind::kMul:
    case Term::Kind::kDiv: {
      TermPtr l = UnifyTerm(a->lhs, b->lhs);
      TermPtr r = UnifyTerm(a->rhs, b->rhs);
      if (l == nullptr || r == nullptr) return nullptr;
      switch (a->kind) {
        case Term::Kind::kAdd: return Term::Add(l, r);
        case Term::Kind::kSub: return Term::Sub(l, r);
        case Term::Kind::kMul: return Term::Mul(l, r);
        default: return Term::Div(l, r);
      }
    }
    case Term::Kind::kFunc1: {
      if (a->func != b->func) return nullptr;
      TermPtr arg = UnifyTerm(a->lhs, b->lhs);
      return arg == nullptr ? nullptr : Term::Func1(a->func, arg);
    }
    default:
      // kVar / kMapRead: structural equality only (handled above).
      return nullptr;
  }
}

/// Split `e` into a numeric constant coefficient and residual factors, so
/// that e == coeff * Prod(rest). Non-products contribute themselves; kNeg
/// folds into the coefficient.
void SplitCoeff(const ExprPtr& e, Value* coeff, std::vector<ExprPtr>* rest) {
  if (e->kind == ring::ExprKind::kConst && e->constant.is_numeric()) {
    *coeff = Value::Mul(*coeff, e->constant);
    return;
  }
  if (e->kind == ring::ExprKind::kNeg) {
    SplitCoeff(e->children[0], coeff, rest);
    *coeff = Value::Neg(*coeff);
    return;
  }
  if (e->kind == ring::ExprKind::kProd) {
    for (const ExprPtr& c : e->children) SplitCoeff(c, coeff, rest);
    return;
  }
  rest->push_back(e);
}

ExprPtr UnifyExpr(const ExprPtr& a, const ExprPtr& b) {
  if (a == nullptr || b == nullptr) return nullptr;
  if (ring::ExprEquals(*a, *b)) return a;

  // Whole-expression negation: -x vs x (either direction).
  if (a->kind == ring::ExprKind::kNeg && b->kind != ring::ExprKind::kNeg &&
      ring::ExprEquals(*a->children[0], *b)) {
    return Expr::Prod(
        {Expr::ValTerm(Term::Mul(Term::Int(-1), SignTerm())), b});
  }
  if (b->kind == ring::ExprKind::kNeg && a->kind != ring::ExprKind::kNeg &&
      ring::ExprEquals(*a, *b->children[0])) {
    return Expr::Prod({Expr::ValTerm(SignTerm()), a});
  }

  // Constant-coefficient negation: delta rewriting renders delete-side
  // negation as a leading Const(-1) product factor, so the two sides differ
  // in product length or leading constant (c * X vs -c * X). Split each
  // side into a scalar coefficient and residual factors; when the
  // coefficients are numeric negations and the residuals unify pairwise,
  // rebuild the product with the coefficient folded into a sign term.
  {
    Value ca(int64_t{1}), cb(int64_t{1});
    std::vector<ExprPtr> ra, rb;
    SplitCoeff(a, &ca, &ra);
    SplitCoeff(b, &cb, &rb);
    if (ra.size() == rb.size() && NumericNegation(ca, cb)) {
      std::vector<ExprPtr> kids;
      kids.push_back(Expr::ValTerm(ca.is_int() && ca.AsInt() == 1
                                       ? SignTerm()
                                       : SignedConst(ca)));
      bool ok = true;
      for (size_t i = 0; i < ra.size(); ++i) {
        ExprPtr c = UnifyExpr(ra[i], rb[i]);
        if (c == nullptr) {
          ok = false;
          break;
        }
        kids.push_back(std::move(c));
      }
      if (ok) return Expr::Prod(std::move(kids));
    }
  }

  if (a->kind != b->kind) return nullptr;
  switch (a->kind) {
    case ring::ExprKind::kConst:
      if (NumericNegation(a->constant, b->constant)) {
        return Expr::ValTerm(SignedConst(a->constant));
      }
      return nullptr;
    case ring::ExprKind::kValTerm: {
      TermPtr t = UnifyTerm(a->term, b->term);
      return t == nullptr ? nullptr : Expr::ValTerm(t);
    }
    case ring::ExprKind::kCmp: {
      if (a->cmp_op != b->cmp_op) return nullptr;
      TermPtr l = UnifyTerm(a->cmp_lhs, b->cmp_lhs);
      TermPtr r = UnifyTerm(a->cmp_rhs, b->cmp_rhs);
      if (l == nullptr || r == nullptr) return nullptr;
      return Expr::Cmp(a->cmp_op, l, r);
    }
    case ring::ExprKind::kLift: {
      if (a->var != b->var) return nullptr;
      TermPtr t = UnifyTerm(a->term, b->term);
      return t == nullptr ? nullptr : Expr::Lift(a->var, t);
    }
    case ring::ExprKind::kNeg: {
      ExprPtr c = UnifyExpr(a->children[0], b->children[0]);
      return c == nullptr ? nullptr : Expr::Neg(c);
    }
    case ring::ExprKind::kSum:
    case ring::ExprKind::kProd: {
      if (a->children.size() != b->children.size()) return nullptr;
      std::vector<ExprPtr> kids;
      kids.reserve(a->children.size());
      for (size_t i = 0; i < a->children.size(); ++i) {
        ExprPtr c = UnifyExpr(a->children[i], b->children[i]);
        if (c == nullptr) return nullptr;
        kids.push_back(std::move(c));
      }
      return a->kind == ring::ExprKind::kSum ? Expr::Sum(std::move(kids))
                                             : Expr::Prod(std::move(kids));
    }
    case ring::ExprKind::kAggSum: {
      if (a->group_vars != b->group_vars) return nullptr;
      ExprPtr c = UnifyExpr(a->children[0], b->children[0]);
      return c == nullptr ? nullptr : Expr::AggSum(a->group_vars, c);
    }
    default:
      // kRel / kMapRef: structural equality only (handled above).
      return nullptr;
  }
}

bool ReferencesSign(const ExprPtr& e) {
  if (e == nullptr) return false;
  return e->AllVars().count(kSignVar) > 0;
}

/// Same statement shell (kind, target, keys, iteration)?
bool SameShape(const Statement& a, const Statement& b) {
  return a.kind == b.kind && a.target == b.target &&
         a.target_keys == b.target_keys && a.lhs_iterate == b.lhs_iterate;
}

bool GuardsEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a == nullptr || b == nullptr) return a == nullptr && b == nullptr;
  return ring::ExprEquals(*a, *b);
}

/// Try to merge the insert/delete forms of one statement slot; returns
/// false when they must stay as two masked statements.
bool UnifyStatement(const Statement& ins, const Statement& del, Stmt* out) {
  if (!SameShape(ins, del)) return false;
  switch (ins.kind) {
    case Statement::Kind::kDelta:
    case Statement::Kind::kReeval: {
      ExprPtr rhs = UnifyExpr(ins.rhs, del.rhs);
      if (rhs == nullptr) return false;
      out->stmt = ins;
      out->stmt.rhs = rhs;
      out->when = Stmt::When::kBoth;
      out->sign_dependent = ReferencesSign(rhs);
      return true;
    }
    case Statement::Kind::kExtreme: {
      if (ins.extreme_value == nullptr || del.extreme_value == nullptr ||
          !ring::TermEquals(*ins.extreme_value, *del.extreme_value) ||
          !GuardsEqual(ins.extreme_guard, del.extreme_guard)) {
        return false;
      }
      out->stmt = ins;
      out->when = Stmt::When::kBoth;
      if (ins.extreme_sign == del.extreme_sign) {
        out->extreme_runtime_sign = false;  // same op on both events
      } else if (ins.extreme_sign > 0 && del.extreme_sign < 0) {
        out->extreme_runtime_sign = true;
        out->sign_dependent = true;
      } else {
        return false;  // add-on-delete / remove-on-insert: not sign-shaped
      }
      return true;
    }
  }
  return false;
}

Stmt MaskedStmt(const Statement& stmt, Stmt::When when) {
  Stmt s;
  s.stmt = stmt;
  s.when = when;
  s.sign_dependent = false;
  return s;
}

// ---- typing --------------------------------------------------------------

void SeedAtomTypes(const ExprPtr& e, const Program& p, ring::VarTypes* types);

void SeedAtomTypesTerm(const TermPtr& t, const Program& p,
                       ring::VarTypes* types) {
  if (t == nullptr) return;
  if (t->kind == Term::Kind::kMapRead) {
    for (const TermPtr& a : t->args) SeedAtomTypesTerm(a, p, types);
    return;
  }
  SeedAtomTypesTerm(t->lhs, p, types);
  SeedAtomTypesTerm(t->rhs, p, types);
}

void SeedAtomTypes(const ExprPtr& e, const Program& p,
                   ring::VarTypes* types) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ring::ExprKind::kRel: {
      const Schema* schema = p.catalog.FindRelation(e->name);
      if (schema == nullptr) break;
      for (size_t i = 0; i < e->args.size() && i < schema->num_columns();
           ++i) {
        types->emplace(e->args[i], schema->column_type(i));
      }
      break;
    }
    case ring::ExprKind::kMapRef: {
      const MapDecl* decl = p.FindMap(e->name);
      if (decl == nullptr) break;
      for (size_t i = 0; i < e->args.size() && i < decl->key_types.size();
           ++i) {
        types->emplace(e->args[i], decl->key_types[i]);
      }
      break;
    }
    default:
      break;
  }
  SeedAtomTypesTerm(e->term, p, types);
  SeedAtomTypesTerm(e->cmp_lhs, p, types);
  SeedAtomTypesTerm(e->cmp_rhs, p, types);
  for (const ExprPtr& c : e->children) SeedAtomTypes(c, p, types);
}

ring::VarTypes TypeStatement(const Stmt& s, const Program& p,
                             const std::map<std::string, std::vector<Type>>&
                                 rel_types,
                             const ring::VarTypes& param_types) {
  ring::VarTypes types = param_types;
  types[kSignVar] = Type::kInt;
  SeedAtomTypes(s.stmt.rhs, p, &types);
  SeedAtomTypes(s.stmt.extreme_guard, p, &types);
  SeedAtomTypesTerm(s.stmt.extreme_value, p, &types);
  if (s.stmt.rhs != nullptr) {
    // Lift-bound variables: best effort — a failed inference leaves the
    // atom-seeded environment, which every backend tolerates.
    (void)ring::InferVarTypes(*s.stmt.rhs, rel_types, &types);
  }
  return types;
}

}  // namespace

// ---- guard predicate extraction ------------------------------------------
// A delta RHS is (after simplification) a product of 0/1 guard factors,
// value factors and atoms. Guards comparing one trigger parameter against a
// constant factor out of the whole product — they are constant across the
// statement's bindings — so backends may evaluate them once per row with
// the selection kernels and skip the residual entirely when they fail.
// Extraction is purely structural: it never fires on factors referencing
// kSignVar (the constant side must be a literal), lift-bound variables or
// LHS-iteration variables (those statements are skipped outright).

namespace {

struct LaneInfo {
  size_t index;
  Type type;
};

/// Try to read `f` as an extractable guard over one of `lanes`.
bool ExtractablePred(const ExprPtr& f,
                     const std::map<std::string, LaneInfo>& lanes,
                     PredSpec* out) {
  if (f->kind != ring::ExprKind::kCmp) return false;
  sql::BinOp op = f->cmp_op;
  if (!sql::IsComparison(op) || op == sql::BinOp::kLike ||
      op == sql::BinOp::kNotLike) {
    return false;
  }
  TermPtr lhs = f->cmp_lhs, rhs = f->cmp_rhs;
  if (lhs == nullptr || rhs == nullptr) return false;
  if (lhs->IsConst() && !rhs->IsConst()) {
    std::swap(lhs, rhs);
    op = sql::FlipComparison(op);
  }
  if (!rhs->IsConst()) return false;
  const Value& c = rhs->constant;

  // Bare parameter against a literal.
  if (lhs->IsVar()) {
    auto it = lanes.find(lhs->var);
    if (it == lanes.end()) return false;
    const LaneInfo& lane = it->second;
    if (lane.type == Type::kString) {
      // Only equality shapes map onto the string kernels.
      if (op != sql::BinOp::kEq && op != sql::BinOp::kNeq) return false;
      if (!c.is_string()) return false;
    } else if (c.is_string()) {
      return false;
    }
    out->kind = PredSpec::Kind::kCmp;
    out->lane = lane.index;
    out->lane_type = lane.type;
    out->op = op;
    out->values = {c};
    return true;
  }

  // EXTRACT(YEAR FROM date_param) = y rewrites to the half-open day range
  // [Jan 1 of y, Jan 1 of y+1); month/day extracts are not contiguous.
  if (lhs->kind == Term::Kind::kFunc1 &&
      lhs->func == sql::FuncKind::kExtractYear && lhs->lhs != nullptr &&
      lhs->lhs->IsVar() && op == sql::BinOp::kEq && c.is_int()) {
    auto it = lanes.find(lhs->lhs->var);
    if (it == lanes.end() || it->second.type != Type::kDate) return false;
    const int64_t y = c.AsInt();
    if (y < 1 || y > 9998) return false;
    out->kind = PredSpec::Kind::kRange;
    out->lane = it->second.index;
    out->lane_type = Type::kDate;
    out->values = {Value(CivilToDays(static_cast<int>(y), 1, 1)),
                   Value(CivilToDays(static_cast<int>(y) + 1, 1, 1))};
    return true;
  }
  return false;
}

bool ValueIdentical(const Value& a, const Value& b) {
  if (a.is_string() != b.is_string() || a.is_double() != b.is_double()) {
    return false;
  }
  return Value::Compare(a, b) == 0;
}

}  // namespace

std::string PredSpec::ToString(const std::vector<Param>& params) const {
  std::string head =
      "#" + std::to_string(lane) + " " +
      (lane < params.size() ? params[lane].name : std::string("?"));
  switch (kind) {
    case Kind::kCmp:
      return head + " " + sql::BinOpName(op) + " " + values[0].ToString();
    case Kind::kRange:
      return head + " in [" + values[0].ToString() + ", " +
             values[1].ToString() + ")";
    case Kind::kIn: {
      std::vector<std::string> vs;
      for (const Value& v : values) vs.push_back(v.ToString());
      return head + " in {" + Join(vs, ", ") + "}";
    }
  }
  return head;
}

bool PredSpecEquals(const PredSpec& a, const PredSpec& b) {
  if (a.kind != b.kind || a.lane != b.lane || a.lane_type != b.lane_type ||
      a.values.size() != b.values.size()) {
    return false;
  }
  if (a.kind == PredSpec::Kind::kCmp && a.op != b.op) return false;
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (!ValueIdentical(a.values[i], b.values[i])) return false;
  }
  return true;
}

void ExtractStmtPreds(const std::vector<Param>& params, Stmt* s) {
  s->preds.clear();
  s->vec_rhs = nullptr;
  s->statically_zero = false;
  if (s->stmt.kind != Statement::Kind::kDelta || s->stmt.rhs == nullptr ||
      !s->stmt.lhs_iterate.empty()) {
    return;
  }
  std::map<std::string, LaneInfo> lanes;
  for (size_t i = 0; i < params.size(); ++i) {
    lanes[params[i].name] = {i, params[i].type};
  }
  std::vector<ExprPtr> factors;
  if (s->stmt.rhs->kind == ring::ExprKind::kProd) {
    factors = s->stmt.rhs->children;
  } else {
    factors = {s->stmt.rhs};
  }
  std::vector<ExprPtr> residual;
  for (const ExprPtr& f : factors) {
    PredSpec ps;
    if (ExtractablePred(f, lanes, &ps)) {
      s->preds.push_back(std::move(ps));
    } else {
      residual.push_back(f);
    }
  }
  if (s->preds.empty()) return;
  // Contradictory equalities on one lane (IN-list cross terms): the
  // statement is identically zero, no backend needs to run it.
  for (size_t i = 0; i < s->preds.size() && !s->statically_zero; ++i) {
    for (size_t j = i + 1; j < s->preds.size(); ++j) {
      const PredSpec& a = s->preds[i];
      const PredSpec& b = s->preds[j];
      if (a.kind == PredSpec::Kind::kCmp && b.kind == PredSpec::Kind::kCmp &&
          a.op == sql::BinOp::kEq && b.op == sql::BinOp::kEq &&
          a.lane == b.lane && !ValueIdentical(a.values[0], b.values[0])) {
        s->statically_zero = true;
        break;
      }
    }
  }
  if (residual.empty()) {
    s->vec_rhs = Expr::Const(Value(int64_t{1}));
  } else if (residual.size() == 1) {
    s->vec_rhs = residual[0];
  } else {
    s->vec_rhs = Expr::Prod(std::move(residual));
  }
}

// ---- batch analysis ------------------------------------------------------
// Ported from runtime::Engine::BuildTriggerInfo so every backend shares one
// vectorization/sharding verdict per unified trigger. Exported (tir.h) so
// the verifier re-derives the same verdict independently of the flags a
// module carries.

DefReadSets ComputeDefReads(const Program& p) {
  DefReadSets out;
  for (const MapDecl& m : p.maps) {
    auto& rels = out.rels[m.name];
    auto& maps = out.maps[m.name];
    if (m.definition != nullptr) {
      m.definition->CollectRels(&rels);
      m.definition->CollectMapRefs(&maps);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const MapDecl& m : p.maps) {
      auto& rels = out.rels[m.name];
      auto& maps = out.maps[m.name];
      size_t r0 = rels.size(), m0 = maps.size();
      std::vector<std::string> deps(maps.begin(), maps.end());
      for (const std::string& dep : deps) {
        auto rit = out.rels.find(dep);
        if (rit != out.rels.end()) {
          rels.insert(rit->second.begin(), rit->second.end());
        }
        auto mit = out.maps.find(dep);
        if (mit != out.maps.end()) {
          maps.insert(mit->second.begin(), mit->second.end());
        }
      }
      changed = changed || rels.size() != r0 || maps.size() != m0;
    }
  }
  return out;
}

void ExpandReads(const ExprPtr& e, const DefReadSets& def,
                 std::set<std::string>* rels, std::set<std::string>* maps) {
  if (e == nullptr) return;
  e->CollectRels(rels);
  std::set<std::string> direct;
  e->CollectMapRefs(&direct);
  for (const std::string& m : direct) {
    maps->insert(m);
    auto rit = def.rels.find(m);
    if (rit != def.rels.end()) {
      rels->insert(rit->second.begin(), rit->second.end());
    }
    auto mit = def.maps.find(m);
    if (mit != def.maps.end()) {
      maps->insert(mit->second.begin(), mit->second.end());
    }
  }
}

std::set<std::string> MapsReadAnywhere(const Program& p,
                                       const DefReadSets& def) {
  std::set<std::string> read_anywhere;
  for (const auto& [name, maps] : def.maps) {
    read_anywhere.insert(maps.begin(), maps.end());
  }
  for (const compiler::Trigger& t : p.triggers) {
    for (const Statement& st : t.statements) {
      if (st.rhs != nullptr) st.rhs->CollectMapRefs(&read_anywhere);
      if (st.extreme_guard != nullptr) {
        st.extreme_guard->CollectMapRefs(&read_anywhere);
      }
      if (st.extreme_value != nullptr) {
        st.extreme_value->CollectMapReads(&read_anywhere);
      }
    }
  }
  return read_anywhere;
}

void AnalyzeTriggerBatch(Trigger* t, const Program& p, const DefReadSets& def,
                         const std::set<std::string>& read_anywhere) {
  std::set<std::string> delta_targets;
  for (const Stmt& s : t->stmts) {
    if (s.stmt.kind == Statement::Kind::kDelta) {
      delta_targets.insert(s.stmt.target);
    }
  }
  bool vectorizable = true;
  bool reads_init_map = false;
  size_t num_delta = 0;
  for (Stmt& s : t->stmts) {
    const Statement& st = s.stmt;
    switch (st.kind) {
      case Statement::Kind::kDelta: {
        ++num_delta;
        if (!st.lhs_iterate.empty()) {
          vectorizable = false;  // iterates the live keys it also writes
          break;
        }
        std::set<std::string> rels, maps;
        ExpandReads(st.rhs, def, &rels, &maps);
        if (rels.count(t->relation) > 0) vectorizable = false;
        for (const std::string& m : maps) {
          if (delta_targets.count(m) > 0) {
            vectorizable = false;
            break;
          }
        }
        for (const std::string& m : maps) {
          const MapDecl* decl = p.FindMap(m);
          if (decl != nullptr && decl->needs_init) {
            reads_init_map = true;  // ReadMap may evaluate an initializer
          }
        }
        break;
      }
      case Statement::Kind::kExtreme: {
        // Vectorizable only when guard and value depend on the event
        // parameters alone.
        std::set<std::string> rels, maps;
        ExpandReads(st.extreme_guard, def, &rels, &maps);
        if (st.extreme_value != nullptr) {
          st.extreme_value->CollectMapReads(&maps);
        }
        if (!rels.empty() || !maps.empty()) vectorizable = false;
        break;
      }
      case Statement::Kind::kReeval: {
        s.reeval_deferrable = read_anywhere.count(st.target) == 0;
        if (!s.reeval_deferrable) vectorizable = false;
        break;
      }
    }
  }
  t->vectorizable = vectorizable;
  // Parallel-safe: the delta phase against the pre-state is pure, so shards
  // of the binding vector can run on concurrent workers. The partition key
  // is the param subset present in every delta target key.
  t->parallel_safe = vectorizable && !reads_init_map && num_delta > 0;
  if (!t->parallel_safe) return;
  for (size_t pi = 0; pi < t->params.size(); ++pi) {
    bool in_every_target = true;
    for (const Stmt& s : t->stmts) {
      if (s.stmt.kind != Statement::Kind::kDelta) continue;
      if (std::find(s.stmt.target_keys.begin(), s.stmt.target_keys.end(),
                    t->params[pi].name) == s.stmt.target_keys.end()) {
        in_every_target = false;
        break;
      }
    }
    if (in_every_target) t->partition_cols.push_back(pi);
  }
  // Without a partition key in the target, same-key updates from different
  // shards merge in shard order rather than event order. Integer sums
  // commute exactly; double sums do not, so keep those sequential.
  if (t->partition_cols.empty()) {
    for (const Stmt& s : t->stmts) {
      if (s.stmt.kind != Statement::Kind::kDelta) continue;
      const MapDecl* decl = p.FindMap(s.stmt.target);
      if (decl != nullptr && decl->value_type == Type::kDouble) {
        t->parallel_safe = false;
        break;
      }
    }
  }
}

// ---- plan text -----------------------------------------------------------

namespace {

std::string AtomPattern(const ExprPtr& f, const std::set<std::string>& bound) {
  std::vector<std::string> parts;
  for (const std::string& a : f->args) {
    parts.push_back(bound.count(a) ? a : "*" + a);
  }
  return f->name + "[" + Join(parts, ", ") + "]";
}

void PlanLines(const ExprPtr& e, std::set<std::string> bound, int indent,
               std::string* out);

void PlanFactor(const ExprPtr& f, std::set<std::string>* bound, int indent,
                std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (f->kind) {
    case ring::ExprKind::kConst:
      *out += pad + "value " + f->constant.ToString() + "\n";
      return;
    case ring::ExprKind::kValTerm:
      *out += pad + "value " + f->term->ToString() + "\n";
      return;
    case ring::ExprKind::kCmp:
      *out += pad + "guard " + f->ToString() + "\n";
      return;
    case ring::ExprKind::kLift:
      if (bound->count(f->var)) {
        *out += pad + "guard " + f->var + " == " + f->term->ToString() + "\n";
      } else {
        *out += pad + "bind " + f->var + " := " + f->term->ToString() + "\n";
        bound->insert(f->var);
      }
      return;
    case ring::ExprKind::kRel:
    case ring::ExprKind::kMapRef: {
      bool all_bound = true;
      bool any_bound = false;
      for (const std::string& a : f->args) {
        if (bound->count(a)) {
          any_bound = true;
        } else {
          all_bound = false;
        }
      }
      const char* op = all_bound ? "probe" : any_bound ? "slice" : "scan";
      *out += pad + op + " " + AtomPattern(f, *bound) + "\n";
      for (const std::string& a : f->args) bound->insert(a);
      return;
    }
    case ring::ExprKind::kNeg:
      *out += pad + "neg:\n";
      PlanLines(f->children[0], *bound, indent + 1, out);
      return;
    case ring::ExprKind::kAggSum:
      *out += pad + "agg sum [" + Join(f->group_vars, ", ") + "]:\n";
      PlanLines(f->children[0], *bound, indent + 1, out);
      return;
    case ring::ExprKind::kSum:
      *out += pad + "sum:\n";
      PlanLines(f, *bound, indent + 1, out);
      return;
    case ring::ExprKind::kProd:
      PlanLines(f, *bound, indent, out);
      return;
  }
}

void PlanLines(const ExprPtr& e, std::set<std::string> bound, int indent,
               std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (e->kind) {
    case ring::ExprKind::kSum:
      for (const ExprPtr& c : e->children) {
        *out += pad + "contrib:\n";
        PlanLines(c, bound, indent + 1, out);
      }
      return;
    case ring::ExprKind::kProd: {
      for (const ExprPtr& f : OrderProductFactors(e->children, bound)) {
        PlanFactor(f, &bound, indent, out);
      }
      return;
    }
    default:
      PlanFactor(e, &bound, indent, out);
      return;
  }
}

const char* WhenName(Stmt::When w) {
  switch (w) {
    case Stmt::When::kBoth: return "both";
    case Stmt::When::kInsertOnly: return "insert";
    case Stmt::When::kDeleteOnly: return "delete";
  }
  return "both";
}

const char* KindName(Statement::Kind k) {
  switch (k) {
    case Statement::Kind::kDelta: return "delta";
    case Statement::Kind::kExtreme: return "extreme";
    case Statement::Kind::kReeval: return "reeval";
  }
  return "delta";
}

}  // namespace

std::vector<ExprPtr> OrderProductFactors(const std::vector<ExprPtr>& factors,
                                         const std::set<std::string>& bound0) {
  std::set<std::string> bound = bound0;
  std::vector<bool> placed(factors.size(), false);
  std::vector<ExprPtr> order;
  for (size_t step = 0; step < factors.size(); ++step) {
    int best = -1, best_score = -1;
    for (size_t i = 0; i < factors.size(); ++i) {
      if (placed[i]) continue;
      const ExprPtr& f = factors[i];
      bool inputs_ok = true;
      for (const std::string& v : f->InVars()) {
        if (!bound.count(v)) {
          inputs_ok = false;
          break;
        }
      }
      if (!inputs_ok) continue;
      bool outputs_bound = true;
      for (const std::string& v : f->OutVars()) {
        if (!bound.count(v)) {
          outputs_bound = false;
          break;
        }
      }
      int score;
      if (outputs_bound) {
        score = 100;
      } else if (f->kind == ring::ExprKind::kLift) {
        score = 90;
      } else if (f->kind == ring::ExprKind::kMapRef ||
                 f->kind == ring::ExprKind::kRel) {
        int bound_args = 0;
        for (const std::string& v : f->args) {
          if (bound.count(v)) ++bound_args;
        }
        score = 50 + bound_args;
      } else {
        score = 40;
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    // If nothing is placeable fall back to declaration order; the consumer
    // fails with a precise message when a variable stays unbound.
    if (best < 0) {
      for (size_t i = 0; i < factors.size(); ++i) {
        if (!placed[i]) {
          best = static_cast<int>(i);
          break;
        }
      }
    }
    placed[static_cast<size_t>(best)] = true;
    order.push_back(factors[static_cast<size_t>(best)]);
    for (const std::string& v :
         factors[static_cast<size_t>(best)]->OutVars()) {
      bound.insert(v);
    }
  }
  return order;
}

const Trigger* Module::FindTrigger(const std::string& relation) const {
  for (const Trigger& t : triggers) {
    if (t.relation == relation) return &t;
  }
  return nullptr;
}

Module Lower(const Program& program) {
  Module m;
  m.program = &program;

  std::map<std::string, std::vector<Type>> rel_types;
  for (const Schema& s : program.catalog.relations()) {
    std::vector<Type> cols;
    for (size_t i = 0; i < s.num_columns(); ++i) {
      cols.push_back(s.column_type(i));
    }
    rel_types[s.name()] = std::move(cols);
  }

  // Relations in stream order (first appearance in the trigger list).
  std::vector<std::string> rels;
  for (const compiler::Trigger& t : program.triggers) {
    if (std::find(rels.begin(), rels.end(), t.relation) == rels.end()) {
      rels.push_back(t.relation);
    }
  }

  const DefReadSets def = ComputeDefReads(program);
  const std::set<std::string> read_anywhere = MapsReadAnywhere(program, def);

  for (const std::string& rel : rels) {
    const compiler::Trigger* ins =
        program.FindTrigger(rel, EventKind::kInsert);
    const compiler::Trigger* del =
        program.FindTrigger(rel, EventKind::kDelete);
    const compiler::Trigger* any = ins != nullptr ? ins : del;

    Trigger t;
    t.relation = rel;
    t.has_insert = ins != nullptr;
    t.has_delete = del != nullptr;
    ring::VarTypes param_types;
    {
      const Schema* schema = program.catalog.FindRelation(rel);
      for (size_t i = 0; i < any->params.size(); ++i) {
        Param p;
        p.name = any->params[i];
        p.type = schema != nullptr && i < schema->num_columns()
                     ? schema->column_type(i)
                     : Type::kInt;
        param_types[p.name] = p.type;
        t.params.push_back(std::move(p));
      }
      std::vector<std::string> names;
      for (const Param& p : t.params) names.push_back(p.name);
      t.signature = StrFormat("on_%s(%s)", rel.c_str(),
                              Join(names, ", ").c_str());
    }

    if (ins != nullptr && del != nullptr &&
        ins->statements.size() == del->statements.size()) {
      // Pair slot by slot; a failed pair degrades to two masked statements
      // at that slot (per-side order is preserved either way).
      for (size_t i = 0; i < ins->statements.size(); ++i) {
        Stmt unified;
        if (UnifyStatement(ins->statements[i], del->statements[i],
                           &unified)) {
          t.stmts.push_back(std::move(unified));
        } else {
          t.stmts.push_back(
              MaskedStmt(ins->statements[i], Stmt::When::kInsertOnly));
          t.stmts.push_back(
              MaskedStmt(del->statements[i], Stmt::When::kDeleteOnly));
        }
      }
    } else {
      if (ins != nullptr) {
        for (const Statement& st : ins->statements) {
          t.stmts.push_back(MaskedStmt(st, Stmt::When::kInsertOnly));
        }
      }
      if (del != nullptr) {
        for (const Statement& st : del->statements) {
          t.stmts.push_back(MaskedStmt(st, Stmt::When::kDeleteOnly));
        }
      }
    }

    for (Stmt& s : t.stmts) {
      s.rendering = s.stmt.ToString();
      s.var_types = TypeStatement(s, program, rel_types, param_types);
      ExtractStmtPreds(t.params, &s);
    }
    AnalyzeTriggerBatch(&t, program, def, read_anywhere);
    m.triggers.push_back(std::move(t));
  }
  return m;
}

std::string Module::ToText() const {
  const Program& p = *program;
  std::string out;
  out += StrFormat("tir module: %zu maps, %zu triggers, %zu views\n",
                   p.maps.size(), triggers.size(), p.views.size());

  out += "\n# maps\n";
  for (const MapDecl& d : p.maps) {
    std::vector<std::string> keys;
    for (size_t i = 0; i < d.key_names.size(); ++i) {
      keys.push_back(d.key_names[i] + ": " +
                     std::string(TypeName(d.key_types[i])));
    }
    out += StrFormat("map %s(%s) -> %s", d.name.c_str(),
                     Join(keys, ", ").c_str(), TypeName(d.value_type));
    if (d.is_extreme) {
      out += d.extreme_kind == sql::AggKind::kMin ? " [min-multiset]"
                                                  : " [max-multiset]";
    }
    if (d.needs_init) out += " [init-on-access]";
    out += "\n";
  }

  for (const Trigger& t : triggers) {
    std::vector<std::string> params;
    for (const Param& pr : t.params) {
      params.push_back(pr.name + ": " + std::string(TypeName(pr.type)));
    }
    out += StrFormat("\ntrigger on_%s(%s, sign: INT)\n", t.relation.c_str(),
                     Join(params, ", ").c_str());
    std::vector<std::string> flags;
    if (t.has_insert) flags.push_back("insert");
    if (t.has_delete) flags.push_back("delete");
    if (t.vectorizable) flags.push_back("vectorizable");
    if (t.parallel_safe) flags.push_back("parallel");
    std::string part;
    for (size_t c : t.partition_cols) {
      if (!part.empty()) part += ",";
      part += std::to_string(c);
    }
    if (!part.empty()) flags.push_back("partition=(" + part + ")");
    out += "  flags: " + Join(flags, " ") + "\n";
    for (const Stmt& s : t.stmts) {
      out += StrFormat("  [%s] %s%s: %s\n", WhenName(s.when),
                       KindName(s.stmt.kind),
                       s.sign_dependent ? " (sign)" : "",
                       s.rendering.c_str());
      for (const PredSpec& ps : s.preds) {
        out += "    pred: " + ps.ToString(t.params) + "\n";
      }
      if (s.statically_zero) {
        out += "    statically-zero (contradictory predicates)\n";
      } else if (s.vec_rhs != nullptr) {
        out += "    residual: " + s.vec_rhs->ToString() + "\n";
      }
      std::set<std::string> bound;
      for (const Param& pr : t.params) bound.insert(pr.name);
      bound.insert(kSignVar);
      for (size_t pos : s.stmt.lhs_iterate) {
        bound.insert(s.stmt.target_keys[pos]);
      }
      if (s.stmt.kind == Statement::Kind::kExtreme) {
        if (s.stmt.extreme_guard != nullptr) {
          std::string plan;
          PlanLines(s.stmt.extreme_guard, bound, 3, &plan);
          out += "      guard-plan:\n" + plan;
        }
        out += "      " +
               std::string(s.extreme_runtime_sign
                               ? "update"
                               : (s.stmt.extreme_sign > 0 ? "add" : "remove")) +
               " " + s.stmt.target + "[" +
               Join(s.stmt.target_keys, ", ") + "] value " +
               s.stmt.extreme_value->ToString() + "\n";
        continue;
      }
      if (s.stmt.rhs != nullptr) {
        std::string plan;
        PlanLines(s.stmt.rhs, bound, 3, &plan);
        out += "    plan:\n" + plan;
      }
    }
  }

  out += "\n# views\n";
  for (const compiler::ViewSpec& v : p.views) {
    std::vector<std::string> cols;
    for (const auto& c : v.columns) {
      cols.push_back(c.name + ": " + std::string(TypeName(c.type)));
    }
    out += StrFormat("view %s(%s)", v.name.c_str(), Join(cols, ", ").c_str());
    if (!v.domain_map.empty()) out += " domain=" + v.domain_map;
    if (v.having != nullptr) out += " [having]";
    if (v.hybrid) out += " [hybrid]";
    out += "\n";
  }
  return out;
}

}  // namespace dbtoaster::tir
