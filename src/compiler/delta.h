// Delta derivation: the core rewrite of the paper.
//
// Given an event ±R(p1..pk), the delta of a ring expression is computed by:
//   ΔR(x1..xk)      = sign · (x1 := p1) · ... · (xk := pk)
//   Δ(other rel)    = 0
//   Δ(e1 + e2)      = Δe1 + Δe2
//   Δ(e1 · e2)      = Δe1·e2 + e1·Δe2 + Δe1·Δe2
//   Δ(AggSum(g, e)) = AggSum(g, Δe)
//   Δ(const/term/cmp/lift/map) = 0
// The (xi := pi) lifts are subsequently eliminated by lift unification in
// simplify.h, which is what makes each recursion level asymptotically
// simpler (one fewer scan/join), as described in §1 of the paper.
#ifndef DBTOASTER_COMPILER_DELTA_H_
#define DBTOASTER_COMPILER_DELTA_H_

#include <string>
#include <vector>

#include "src/ring/expr.h"
#include "src/storage/table.h"

namespace dbtoaster::compiler {

/// The event a delta is taken with respect to.
struct DeltaEvent {
  std::string relation;
  int sign = +1;                    ///< +1 insert, -1 delete
  std::vector<std::string> params;  ///< one fresh variable per column

  std::string Label() const {      ///< "+R" / "-R"
    return (sign > 0 ? "+" : "-") + relation;
  }
};

/// Compute the delta of `e` with respect to `event`.
ring::ExprPtr Delta(const ring::ExprPtr& e, const DeltaEvent& event);

}  // namespace dbtoaster::compiler

#endif  // DBTOASTER_COMPILER_DELTA_H_
