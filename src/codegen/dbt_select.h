// Branch-free selection kernels for the columnar batch path.
//
// A selection vector is a dense array of uint32 row indices. Each kernel
// takes a flat column lane plus an input selection (`base`; nullptr means
// the identity 0..n-1), writes the surviving indices to `out` and returns
// the survivor count. `out` may alias `base`, so AND-composition is a chain
// of in-place refinement passes:
//
//   uint32_t k = SelCmp(shipdate, SelOp::kGe, lo, nullptr, n, sel);
//   k = SelCmp(shipdate, SelOp::kLt, hi, sel, k, sel);
//   k = SelCmp(quantity, SelOp::kLt, INT64_C(24), sel, k, sel);
//
// The inner loops are plain branch-free compress loops (`out[k] = i; k +=
// pred`) over int64/double lanes — no intrinsics, the compiler's
// auto-vectorizer does the rest. String equality gets a length-prechecked
// scalar kernel so generated selection prologues never run a per-row
// std::string comparison loop inline.
//
// Generated programs consult SelectionEnabled() to pick between the
// group-vectorized path (selection prologue + statement-major phases) and
// the scalar row-at-a-time path; both produce byte-identical state
// (tests/shard_test.cc pins it).
#ifndef DBTOASTER_CODEGEN_DBT_SELECT_H_
#define DBTOASTER_CODEGEN_DBT_SELECT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dbt {

enum class SelOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Process-wide toggle for the generated selection prologue (default on).
/// Off = generated batch handlers replay rows through the scalar handler;
/// the interpreted engine's mirror honors the same flag.
inline std::atomic<bool>& SelectionFlag() {
  static std::atomic<bool> flag{true};
  return flag;
}
inline bool SelectionEnabled() {
  return SelectionFlag().load(std::memory_order_relaxed);
}
inline void SetSelectionEnabled(bool on) {
  SelectionFlag().store(on, std::memory_order_relaxed);
}

namespace sel_detail {

/// One compress pass: append i to out when pred(lane[i]), for i drawn from
/// `base` (or 0..n-1 when base == nullptr). Branch-free on the predicate.
template <typename T, typename Pred>
inline uint32_t Pass(const T* lane, const uint32_t* base, uint32_t n,
                     uint32_t* out, Pred pred) {
  uint32_t k = 0;
  if (base == nullptr) {
    for (uint32_t i = 0; i < n; ++i) {
      out[k] = i;
      k += static_cast<uint32_t>(pred(lane[i]));
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t r = base[i];
      out[k] = r;
      k += static_cast<uint32_t>(pred(lane[r]));
    }
  }
  return k;
}

}  // namespace sel_detail

/// lane[i] <op> c. T is int64_t or double (dates travel as int64 days).
template <typename T>
inline uint32_t SelCmp(const T* lane, SelOp op, T c, const uint32_t* base,
                       uint32_t n, uint32_t* out) {
  switch (op) {
    case SelOp::kEq:
      return sel_detail::Pass(lane, base, n, out,
                              [c](T v) { return v == c; });
    case SelOp::kNe:
      return sel_detail::Pass(lane, base, n, out,
                              [c](T v) { return v != c; });
    case SelOp::kLt:
      return sel_detail::Pass(lane, base, n, out, [c](T v) { return v < c; });
    case SelOp::kLe:
      return sel_detail::Pass(lane, base, n, out,
                              [c](T v) { return v <= c; });
    case SelOp::kGt:
      return sel_detail::Pass(lane, base, n, out, [c](T v) { return v > c; });
    case SelOp::kGe:
      return sel_detail::Pass(lane, base, n, out,
                              [c](T v) { return v >= c; });
  }
  return 0;
}

/// Half-open range: lo <= lane[i] < hi (the shape EXTRACT(YEAR)=c rewrites
/// to over day-encoded dates).
template <typename T>
inline uint32_t SelRange(const T* lane, T lo, T hi, const uint32_t* base,
                         uint32_t n, uint32_t* out) {
  return sel_detail::Pass(lane, base, n, out,
                          [lo, hi](T v) { return lo <= v && v < hi; });
}

/// Small-list membership (IN-list); branch-free inner fold over the list.
template <typename T>
inline uint32_t SelIn(const T* lane, const T* vals, size_t nvals,
                      const uint32_t* base, uint32_t n, uint32_t* out) {
  return sel_detail::Pass(lane, base, n, out, [vals, nvals](T v) {
    int hit = 0;
    for (size_t j = 0; j < nvals; ++j) hit |= static_cast<int>(v == vals[j]);
    return hit != 0;
  });
}

/// String lane equality with a length precheck: mismatched rows cost one
/// size_t compare, never a character scan.
inline uint32_t SelStrEq(const std::string* lane, const std::string& c,
                         const uint32_t* base, uint32_t n, uint32_t* out) {
  const size_t len = c.size();
  return sel_detail::Pass(lane, base, n, out, [&c, len](const std::string& v) {
    return v.size() == len && v == c;
  });
}

inline uint32_t SelStrNe(const std::string* lane, const std::string& c,
                         const uint32_t* base, uint32_t n, uint32_t* out) {
  const size_t len = c.size();
  return sel_detail::Pass(lane, base, n, out, [&c, len](const std::string& v) {
    return v.size() != len || v != c;
  });
}

/// Stack-or-heap scratch for one selection vector. Groups up to kInline
/// rows (including the scalar on_<R> wrapper's 1-row lanes) select with no
/// allocation; larger groups spill to a vector sized once per call.
class SelBuf {
 public:
  uint32_t* data(uint32_t n) {
    if (n <= kInline) return small_;
    heap_.resize(n);
    return heap_.data();
  }

 private:
  static constexpr uint32_t kInline = 64;
  uint32_t small_[kInline];
  std::vector<uint32_t> heap_;
};

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBT_SELECT_H_
