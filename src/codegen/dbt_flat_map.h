// Shared cache-conscious collection core for BOTH map layers: the
// dbtc-generated code (dbt::Map / dbt::SliceIndex / dbt::ExtremeMap in
// dbtoaster_runtime.h) and the interpreted runtime (runtime::ValueMap,
// storage::Table multisets). Self-contained on purpose: generated sources
// are compiled with only this directory on the include path (the paper's
// "embedded mode"), so this header may not include anything from the rest
// of the repository.
//
// Contents:
//  - Mix64 / HashCombine / HashScalar / TupleHash: the single finalized
//    hashing scheme used by every map layer in the system.
//  - Slab / PoolAlloc: a size-class pooled allocator. Small chunks are
//    carved out of bump-allocated blocks and recycled through per-class
//    free lists (table doublings and SliceIndex key-sets reuse each
//    other's retired arrays); large chunks get dedicated blocks that are
//    returned eagerly. reserved_bytes() is the true resident footprint.
//  - FlatTable / FlatMap / FlatSet: open-addressing hash tables with
//    linear probing, robin-hood displacement, power-of-two capacity and
//    tombstone-free backward-shift deletion. Probe loops touch a dense
//    hash word array first, so misses rarely load slot payloads.
#ifndef DBTOASTER_CODEGEN_DBT_FLAT_MAP_H_
#define DBTOASTER_CODEGEN_DBT_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace dbt {

// ---------------------------------------------------------------------------
// Hashing core.
// ---------------------------------------------------------------------------

/// 64-bit mix (splitmix64 finalizer); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost-style, with a 64-bit constant).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Seed for composite-key folds (tuples and dynamic rows use the same one).
inline constexpr size_t kHashSeed = 0x9e3779b97f4a7c15ULL;

inline size_t HashScalar(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}
/// Integral doubles hash like the equal int64 (2 == 2.0 must collide for
/// the dynamically-typed row keys of the interpreted layer). The guard is
/// exactly int64's range — [-2^63, 2^63), both bounds representable — so
/// every double that exact numeric comparison can equate with an int64
/// takes the integer hash, and the conversion below stays defined.
inline size_t HashScalar(double v) {
  if (v >= -9223372036854775808.0 && v < 9223372036854775808.0) {
    const int64_t i = static_cast<int64_t>(v);
    if (static_cast<double>(i) == v) return Mix64(static_cast<uint64_t>(i));
  }
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits);
}
/// FNV-1a over the bytes, finalized with Mix64 (std::hash<string> differs
/// between standard libraries; view materialization order must not).
inline size_t HashScalar(const std::string& v) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : v) {
    h = (h ^ c) * 0x100000001b3ULL;
  }
  return Mix64(h);
}

namespace internal {
template <typename Tuple, size_t... I>
size_t HashTupleImpl(const Tuple& t, std::index_sequence<I...>) {
  size_t h = kHashSeed;
  ((h = HashCombine(h, HashScalar(std::get<I>(t)))), ...);
  return h;
}
}  // namespace internal

// ---------------------------------------------------------------------------
// Shard routing: the logical partition count is a fixed constant (NOT the
// thread count), so a sharded execution's per-partition event subsequences —
// and therefore its map contents — are identical at every thread count.
// Routing consumes bits 48..50 of the finalized scalar hash: the low bits
// pick the home bucket inside a partition and the top byte is the probe
// fragment, so all three uses stay decorrelated.
// ---------------------------------------------------------------------------

inline constexpr size_t kNumShards = 8;

inline size_t ShardOfHash(size_t h) {
  return (static_cast<uint64_t>(h) >> 48) & (kNumShards - 1);
}

/// Shard of a routing scalar (int64/double/string), via the shared
/// finalized hash so both map layers route identically.
template <typename T>
size_t ShardOf(const T& v) {
  return ShardOfHash(HashScalar(v));
}

/// Hash functor for std::tuple keys; same fold as the interpreted layer's
/// RowHash so both layers see identical finalized hashes.
struct TupleHash {
  template <typename... Ts>
  size_t operator()(const std::tuple<Ts...>& t) const {
    return internal::HashTupleImpl(t,
                                   std::make_index_sequence<sizeof...(Ts)>());
  }
};

// ---------------------------------------------------------------------------
// Retained-bytes helpers: heap payloads reachable from an entry but not
// resident in the table's slab (string bodies). Used by state accounting.
// ---------------------------------------------------------------------------

inline size_t ExternalBytes(int64_t) { return 0; }
inline size_t ExternalBytes(double) { return 0; }
inline size_t ExternalBytes(const std::string& s) {
  // SSO bodies live inside the slot (inside the slab); only spilled ones
  // occupy extra heap. Detect SSO portably: the body pointer aims inside
  // the string object itself.
  const char* p = s.data();
  const char* obj = reinterpret_cast<const char*>(&s);
  const bool sso = p >= obj && p < obj + sizeof(std::string);
  return sso ? 0 : s.capacity() + 1;
}
template <typename... Ts>
size_t ExternalBytes(const std::tuple<Ts...>& t) {
  return std::apply(
      [](const Ts&... vs) {
        size_t n = 0;
        ((n += ExternalBytes(vs)), ...);
        return n;
      },
      t);
}
template <typename A, typename B>
size_t ExternalBytes(const std::pair<A, B>& p) {
  return ExternalBytes(p.first) + ExternalBytes(p.second);
}

// ---------------------------------------------------------------------------
// Slab: size-class pooled allocator.
// ---------------------------------------------------------------------------

class Slab {
 public:
  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;
  ~Slab() {
    for (const Block& b : blocks_) ::operator delete(b.ptr);
    for (const Block& b : dedicated_) ::operator delete(b.ptr);
  }

  void* Allocate(size_t bytes) {
    if (bytes == 0) return nullptr;
    const size_t cls = SizeClass(bytes);
    if (cls > kMaxChunkLog2) {
      // Dedicated block: returned to the OS eagerly on Deallocate, so a
      // growing table does not strand its past arrays.
      void* p = ::operator new(bytes);
      dedicated_.push_back(Block{p, bytes});
      reserved_ += bytes;
      live_ += bytes;
      return p;
    }
    const size_t chunk = size_t{1} << cls;
    live_ += chunk;
    if (FreeNode* head = free_[cls]) {
      free_[cls] = head->next;
      return head;
    }
    if (bump_left_ < chunk) NewBlock(chunk);
    void* p = bump_;
    bump_ += chunk;
    bump_left_ -= chunk;
    return p;
  }

  void Deallocate(void* p, size_t bytes) {
    if (p == nullptr || bytes == 0) return;
    const size_t cls = SizeClass(bytes);
    if (cls > kMaxChunkLog2) {
      // Dedicated blocks live in their own (small: one per currently-big
      // array) list, so this scan does not degrade with bump-block count.
      for (size_t i = 0; i < dedicated_.size(); ++i) {
        if (dedicated_[i].ptr == p) {
          reserved_ -= dedicated_[i].bytes;
          live_ -= dedicated_[i].bytes;
          ::operator delete(p);
          dedicated_[i] = dedicated_.back();
          dedicated_.pop_back();
          return;
        }
      }
      return;
    }
    const size_t chunk = size_t{1} << cls;
    auto* n = static_cast<FreeNode*>(p);
    n->next = free_[cls];
    free_[cls] = n;
    live_ -= chunk;
  }

  /// Bytes held from the OS (blocks + dedicated allocations).
  size_t reserved_bytes() const { return reserved_; }
  /// Bytes handed out and not yet freed.
  size_t live_bytes() const { return live_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Block {
    void* ptr;
    size_t bytes;
  };

  static constexpr size_t kMinChunkLog2 = 4;   // 16 B: holds a FreeNode.
  static constexpr size_t kMaxChunkLog2 = 12;  // 4 KiB; larger = dedicated.
  static constexpr size_t kMaxBlock = size_t{1} << 16;  // 64 KiB

  static size_t SizeClass(size_t bytes) {
    size_t cls = kMinChunkLog2;
    while ((size_t{1} << cls) < bytes) ++cls;
    return cls;
  }

  void NewBlock(size_t at_least) {
    // Tail of the previous block (if any) is parked in the free lists so
    // it is not stranded.
    while (bump_left_ >= (size_t{1} << kMinChunkLog2)) {
      size_t cls = kMaxChunkLog2;
      while ((size_t{1} << cls) > bump_left_) --cls;
      Deallocate(bump_, size_t{1} << cls);
      live_ += size_t{1} << cls;  // undo Deallocate's live_ accounting
      bump_ += size_t{1} << cls;
      bump_left_ -= size_t{1} << cls;
    }
    size_t sz = next_block_;
    if (sz < at_least) sz = at_least;
    next_block_ = next_block_ * 2 < kMaxBlock ? next_block_ * 2 : kMaxBlock;
    void* p = ::operator new(sz);
    blocks_.push_back(Block{p, sz});
    reserved_ += sz;
    bump_ = static_cast<char*>(p);
    bump_left_ = sz;
  }

  std::vector<Block> blocks_;      ///< bump blocks (freed only at teardown)
  std::vector<Block> dedicated_;   ///< live oversized allocations
  char* bump_ = nullptr;
  size_t bump_left_ = 0;
  FreeNode* free_[kMaxChunkLog2 + 1] = {};
  size_t next_block_ = 1024;
  size_t reserved_ = 0;
  size_t live_ = 0;
};

/// std-allocator adapter over a Slab. With no slab bound it falls back to
/// the global heap, so default-constructed (empty / moved-from) containers
/// stay valid.
template <typename T>
struct PoolAlloc {
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  Slab* slab = nullptr;

  PoolAlloc() = default;
  explicit PoolAlloc(Slab* s) : slab(s) {}
  template <typename U>
  PoolAlloc(const PoolAlloc<U>& o) : slab(o.slab) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (slab != nullptr) return static_cast<T*>(slab->Allocate(bytes));
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t n) {
    if (slab != nullptr) {
      slab->Deallocate(p, n * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }
  template <typename U>
  bool operator==(const PoolAlloc<U>& o) const {
    return slab == o.slab;
  }
};

// ---------------------------------------------------------------------------
// FlatTable: the open-addressing core.
// ---------------------------------------------------------------------------

/// Robin-hood linear-probing table over `Entry` slots, probed through a
/// dense metadata array. Each slot's `info` word packs its probe distance
/// (high byte, +1 so 0 still means empty) with an 8-bit fragment of its
/// hash: `info = (dist + 1) << 8 | frag`. Chains are kept sorted by info
/// (robin-hood displacement on the composite order), so a lookup walks the
/// metadata with a single monotone comparison per step and touches the
/// entry payload only when the distance AND fragment both match — point
/// probes rarely load slot memory at all. `KeyOf` projects the key out of
/// an entry. Deletion is tombstone-free (backward shift), so probe
/// sequences never degrade. Storage comes from a slab: an owned one
/// created lazily on first insert, or an external one shared with sibling
/// tables (SliceIndex key-sets all draw from their index's slab).
template <typename Entry, typename Key, typename KeyOf, typename Hash,
          typename Eq>
class FlatTable {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 8;

  FlatTable() = default;
  explicit FlatTable(Slab* external) : slab_(external) {}

  FlatTable(const FlatTable& o) { CopyFrom(o); }
  FlatTable& operator=(const FlatTable& o) {
    if (this != &o) {
      FreeArrays();
      owned_.reset();
      slab_ = nullptr;
      CopyFrom(o);
    }
    return *this;
  }
  FlatTable(FlatTable&& o) noexcept
      : owned_(std::move(o.owned_)),
        slab_(o.slab_),
        info_(std::move(o.info_)),
        slots_(std::move(o.slots_)),
        mask_(o.mask_),
        size_(o.size_) {
    o.slab_ = nullptr;
    o.mask_ = 0;
    o.size_ = 0;
  }
  FlatTable& operator=(FlatTable&& o) noexcept {
    if (this != &o) {
      // Release my arrays into my (still live) slab before dropping it.
      info_ = std::move(o.info_);
      slots_ = std::move(o.slots_);
      mask_ = o.mask_;
      size_ = o.size_;
      owned_ = std::move(o.owned_);
      slab_ = o.slab_;
      o.slab_ = nullptr;
      o.mask_ = 0;
      o.size_ = 0;
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  /// Slot index of `k`, or npos.
  template <typename LK>
  size_t FindIndex(const LK& k) const {
    if (size_ == 0) return npos;
    const size_t h = Hash{}(k);
    size_t i = h & mask_;
    uint32_t want = kHome | Frag(h);
    while (true) {
      const uint32_t m = info_[i];
      if (m == want && Eq{}(KeyOf{}(slots_[i]), k)) return i;
      // Sorted-chain invariant: once the occupant's info drops below the
      // candidate's (empty slots are 0), the key cannot be further on.
      if (m < want) return npos;
      want += kStep;
      i = (i + 1) & mask_;
    }
  }

  /// Find `k`, inserting `make()` if absent. The returned slot index is
  /// valid until the next insert/erase.
  template <typename LK, typename MakeEntry>
  std::pair<size_t, bool> FindOrInsert(const LK& k, MakeEntry&& make) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
    const size_t h = Hash{}(k);
    size_t i = h & mask_;
    uint32_t want = kHome | Frag(h);
    while (true) {
      const uint32_t m = info_[i];
      if (m == want && Eq{}(KeyOf{}(slots_[i]), k)) return {i, false};
      if (m < want) {
        if (want >= kMaxInfo) {  // distance saturated: grow and retry
          ForceGrow();
          return FindOrInsert(k, make);
        }
        if (m == 0) {
          info_[i] = want;
          slots_[i] = make();
          ++size_;
          return {i, true};
        }
        // Richer occupant: take its slot, displace it onward.
        Entry carry = std::move(slots_[i]);
        const uint32_t ch = m + kStep;
        info_[i] = want;
        slots_[i] = make();
        ++size_;
        ShiftIn(ch, std::move(carry), (i + 1) & mask_);
        return {i, true};
      }
      want += kStep;
      i = (i + 1) & mask_;
    }
  }

  template <typename LK>
  bool Erase(const LK& k) {
    const size_t i = FindIndex(k);
    if (i == npos) return false;
    EraseIndex(i);
    return true;
  }

  /// Backward-shift deletion: slide the displaced tail of the probe chain
  /// one slot back instead of leaving a tombstone. When occupancy drops
  /// below 1/8 the arrays are rebuilt at half capacity (hysteresis against
  /// the 3/4 grow threshold), so scans over long-lived maps stay O(live)
  /// instead of O(historical peak) — the interpreted slice-scan fix.
  void EraseIndex(size_t i) {
    while (true) {
      const size_t n = (i + 1) & mask_;
      const uint32_t m = info_[n];
      if (m < kHome + kStep) break;  // empty, or already at its home slot
      info_[i] = m - kStep;
      slots_[i] = std::move(slots_[n]);
      i = n;
    }
    info_[i] = 0;
    slots_[i] = Entry{};  // release payloads (strings, nested sets)
    --size_;
    if (slots_.size() > kMinCapacity && size_ * 8 < slots_.size()) {
      Resize(slots_.size() / 2);
    }
  }

  void Clear() {
    if (size_ == 0) return;
    // Large tables release their arrays into the slab (recycled by the next
    // growth chain) so a clear-and-refill pattern — hybrid re-evaluation
    // statements — does not strand peak-sized probe arrays.
    if (slots_.size() > 64) {
      FreeArrays();
      return;
    }
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (info_[i] != 0) {
        info_[i] = 0;
        slots_[i] = Entry{};
      }
    }
    size_ = 0;
  }

  Entry& SlotEntry(size_t i) { return slots_[i]; }
  const Entry& SlotEntry(size_t i) const { return slots_[i]; }

  /// Resident footprint of the owned slab (0 when drawing from a shared
  /// slab: the owner reports it once).
  size_t PoolBytes() const {
    return owned_ != nullptr ? sizeof(Slab) + owned_->reserved_bytes() : 0;
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using reference = const Entry&;
    using pointer = const Entry*;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const FlatTable* t, size_t i) : t_(t), i_(i) { Skip(); }
    reference operator*() const { return t_->slots_[i_]; }
    pointer operator->() const { return &t_->slots_[i_]; }
    const_iterator& operator++() {
      ++i_;
      Skip();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator c = *this;
      ++*this;
      return c;
    }
    bool operator==(const const_iterator&) const = default;

   private:
    void Skip() {
      while (i_ < t_->info_.size() && t_->info_[i_] == 0) ++i_;
    }
    const FlatTable* t_ = nullptr;
    size_t i_ = 0;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, info_.size()); }

 private:
  using InfoVec = std::vector<uint32_t, PoolAlloc<uint32_t>>;
  using SlotVec = std::vector<Entry, PoolAlloc<Entry>>;

  static constexpr uint32_t kStep = 0x100;   ///< +1 probe distance
  static constexpr uint32_t kHome = 0x100;   ///< distance 0 (occupied)
  static constexpr uint32_t kMaxInfo = 0x100 * 255;

  static uint32_t Frag(size_t h) {
    // High bits: the low ones pick the home bucket. Widen first so the
    // shift stays defined on 32-bit size_t targets (frag degrades to 0
    // there, which only weakens the filter, never correctness).
    return static_cast<uint32_t>(static_cast<uint64_t>(h) >> 56);
  }

  void EnsureSlab() {
    if (slab_ == nullptr) {
      owned_ = std::make_unique<Slab>();
      slab_ = owned_.get();
    }
  }

  void Grow() {
    if (slots_.empty()) {
      EnsureSlab();
      info_ = InfoVec(kMinCapacity, 0, PoolAlloc<uint32_t>(slab_));
      slots_ = SlotVec(kMinCapacity, PoolAlloc<Entry>(slab_));
      mask_ = kMinCapacity - 1;
      return;
    }
    if ((size_ + 1) * 4 <= slots_.size() * 3) return;
    ForceGrow();
  }

  void ForceGrow() { Resize(slots_.size() * 2); }

  void Resize(size_t new_cap) {
    InfoVec old_info = std::move(info_);
    SlotVec old_slots = std::move(slots_);
    info_ = InfoVec(new_cap, 0, PoolAlloc<uint32_t>(slab_));
    slots_ = SlotVec(new_cap, PoolAlloc<Entry>(slab_));
    mask_ = new_cap - 1;
    for (size_t i = 0; i < old_info.size(); ++i) {
      if (old_info[i] != 0) {
        const size_t h = Hash{}(KeyOf{}(old_slots[i]));
        ShiftIn(kHome | Frag(h), std::move(old_slots[i]), h & mask_);
      }
    }
  }

  /// Robin-hood displacement of a keyed entry known to be absent. `ci` is
  /// the carried entry's info for position `i`.
  void ShiftIn(uint32_t ci, Entry&& entry, size_t i) {
    Entry carry = std::move(entry);
    while (true) {
      const uint32_t m = info_[i];
      if (m == 0) {
        info_[i] = ci;
        slots_[i] = std::move(carry);
        return;
      }
      if (m < ci) {
        std::swap(slots_[i], carry);
        info_[i] = ci;
        ci = m;
      }
      ci += kStep;
      i = (i + 1) & mask_;
    }
  }

  void CopyFrom(const FlatTable& o) {
    if (o.size_ == 0) return;
    EnsureSlab();
    info_ = InfoVec(o.info_.begin(), o.info_.end(), PoolAlloc<uint32_t>(slab_));
    slots_ =
        SlotVec(o.slots_.begin(), o.slots_.end(), PoolAlloc<Entry>(slab_));
    mask_ = o.mask_;
    size_ = o.size_;
  }

  void FreeArrays() {
    info_ = InfoVec();
    slots_ = SlotVec();
    mask_ = 0;
    size_ = 0;
  }

  std::unique_ptr<Slab> owned_;  // declared before the arrays: destroyed
  Slab* slab_ = nullptr;         // after they release into it
  InfoVec info_;                 // (dist + 1) << 8 | frag; 0 = empty
  SlotVec slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// FlatMap / FlatSet: keyed front-ends over FlatTable.
// ---------------------------------------------------------------------------

template <typename K, typename V, typename Hash = TupleHash,
          typename Eq = std::equal_to<K>>
class FlatMap {
  struct KeyOf {
    const K& operator()(const std::pair<K, V>& e) const { return e.first; }
  };
  using Table = FlatTable<std::pair<K, V>, K, KeyOf, Hash, Eq>;

 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename Table::const_iterator;
  static constexpr size_t npos = Table::npos;

  FlatMap() = default;
  explicit FlatMap(Slab* slab) : table_(slab) {}

  std::pair<size_t, bool> try_emplace(const K& k) {
    return table_.FindOrInsert(k, [&] { return value_type(k, V{}); });
  }
  std::pair<size_t, bool> try_emplace(const K& k, V v) {
    return table_.FindOrInsert(
        k, [&] { return value_type(k, std::move(v)); });
  }
  template <typename MakeV>
  std::pair<size_t, bool> try_emplace_with(const K& k, MakeV&& mk) {
    return table_.FindOrInsert(k, [&] { return value_type(k, mk()); });
  }

  V* find(const K& k) {
    const size_t i = table_.FindIndex(k);
    return i == npos ? nullptr : &table_.SlotEntry(i).second;
  }
  const V* find(const K& k) const {
    const size_t i = table_.FindIndex(k);
    return i == npos ? nullptr : &table_.SlotEntry(i).second;
  }
  bool contains(const K& k) const { return table_.FindIndex(k) != npos; }

  const K& key_at(size_t i) const { return table_.SlotEntry(i).first; }
  V& value_at(size_t i) { return table_.SlotEntry(i).second; }
  const V& value_at(size_t i) const { return table_.SlotEntry(i).second; }

  bool erase(const K& k) { return table_.Erase(k); }
  void erase_at(size_t i) { table_.EraseIndex(i); }
  void clear() { table_.Clear(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t capacity() const { return table_.capacity(); }
  size_t pool_bytes() const { return table_.PoolBytes(); }

  const_iterator begin() const { return table_.begin(); }
  const_iterator end() const { return table_.end(); }

 private:
  Table table_;
};

template <typename K, typename Hash = TupleHash,
          typename Eq = std::equal_to<K>>
class FlatSet {
  struct Identity {
    const K& operator()(const K& k) const { return k; }
  };
  using Table = FlatTable<K, K, Identity, Hash, Eq>;

 public:
  using const_iterator = typename Table::const_iterator;

  FlatSet() = default;
  explicit FlatSet(Slab* slab) : table_(slab) {}

  bool insert(const K& k) {
    return table_.FindOrInsert(k, [&] { return k; }).second;
  }
  bool contains(const K& k) const { return table_.FindIndex(k) != Table::npos; }
  bool erase(const K& k) { return table_.Erase(k); }
  void clear() { table_.Clear(); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t pool_bytes() const { return table_.PoolBytes(); }

  const_iterator begin() const { return table_.begin(); }
  const_iterator end() const { return table_.end(); }

 private:
  Table table_;
};

// ---------------------------------------------------------------------------
// Sharded: a thin partitioned front over any map-like store.
// ---------------------------------------------------------------------------

/// kNumShards independent partitions of `M`, routed by the finalized hash
/// of tuple-key component `kRoutePos` (the shard attribute chosen by the
/// compiler's shard plan). Each partition owns its own slab, so concurrent
/// workers pinned to distinct partitions share no allocator state and take
/// no locks on the hot path. Point operations route; iteration walks
/// part(0) .. part(kNumShards - 1) in fixed order, so materialized views
/// are identical at every thread count. size()/bytes() sum partitions.
template <typename M, size_t kRoutePos>
class Sharded {
 public:
  static constexpr size_t kParts = kNumShards;

  template <typename K>
  static size_t shard_of(const K& k) {
    return ShardOf(std::get<kRoutePos>(k));
  }

  M& part(size_t s) { return parts_[s]; }
  const M& part(size_t s) const { return parts_[s]; }

  template <typename K>
  auto get(const K& k) const {
    return parts_[shard_of(k)].get(k);
  }
  template <typename K>
  bool contains(const K& k) const {
    return parts_[shard_of(k)].contains(k);
  }
  /// Forwarded Map::find_value: mutable slot of a live entry, routed to the
  /// owning partition (nullptr when absent).
  template <typename K>
  auto find_value(const K& k) {
    return parts_[shard_of(k)].find_value(k);
  }
  template <typename K, typename V>
  auto add(const K& k, V delta) {
    return parts_[shard_of(k)].add(k, std::move(delta));
  }
  template <typename K, typename V>
  auto set(const K& k, V v) {
    return parts_[shard_of(k)].set(k, std::move(v));
  }

  void clear() {
    for (M& p : parts_) p.clear();
  }
  size_t size() const {
    size_t n = 0;
    for (const M& p : parts_) n += p.size();
    return n;
  }
  size_t bytes() const {
    size_t n = sizeof(*this) - kParts * sizeof(M);
    for (const M& p : parts_) n += p.bytes();
    return n;
  }

  /// Visit every entry in fixed part order (the same order iteration and
  /// materialized views use, so derived structures rebuilt from a walk are
  /// identical at every thread count).
  template <typename F>
  void for_each(F&& f) const {
    for (const M& p : parts_) p.for_each(f);
  }

  /// Serialize / restore part by part. Routing is hash-of-component, which
  /// is a pure function of the key, so saving and loading per part lands
  /// every entry back in its owning partition by construction. The Ser and
  /// Deser types stay template parameters so this header does not need the
  /// serializer (only instantiations that snapshot pull it in).
  template <typename S>
  void save(S& s) const {
    for (const M& p : parts_) p.save(s);
  }
  template <typename D>
  bool load(D& d) {
    bool ok = true;
    for (M& p : parts_) ok = p.load(d) && ok;
    return ok;
  }

 private:
  M parts_[kParts];
};

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBT_FLAT_MAP_H_
