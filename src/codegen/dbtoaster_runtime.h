// Standalone runtime support for DBToaster-generated C++ code.
//
// Generated event handlers depend on this header ONLY — no other part of
// the repository — so emitted sources can be compiled into any application
// (the paper's "embedded mode"). Keep it minimal and allocation-conscious:
// the whole point of compilation is straight-line code over hash maps.
#ifndef DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
#define DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

namespace dbt {

/// Dynamic value used only at the string-dispatch boundary; the generated
/// handler bodies are fully typed.
using Value = std::variant<int64_t, double, std::string>;

inline int64_t AsInt(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v);
  if (std::holds_alternative<double>(v)) {
    return static_cast<int64_t>(std::get<double>(v));
  }
  return 0;
}
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return 0.0;
}
inline const std::string& AsString(const Value& v) {
  static const std::string kEmpty;
  if (std::holds_alternative<std::string>(v)) return std::get<std::string>(v);
  return kEmpty;
}

/// SQL-style division: x/0 == 0.
inline double SafeDiv(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

namespace internal {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashScalar(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}
inline size_t HashScalar(double v) {
  if (v == static_cast<int64_t>(v)) {
    return Mix64(static_cast<uint64_t>(static_cast<int64_t>(v)));
  }
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits);
}
inline size_t HashScalar(const std::string& v) {
  return std::hash<std::string>()(v);
}

template <typename Tuple, size_t... I>
size_t HashTupleImpl(const Tuple& t, std::index_sequence<I...>) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  ((h ^= HashScalar(std::get<I>(t)) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2)),
   ...);
  return h;
}

}  // namespace internal

/// Hash functor for std::tuple keys.
struct TupleHash {
  template <typename... Ts>
  size_t operator()(const std::tuple<Ts...>& t) const {
    return internal::HashTupleImpl(
        t, std::make_index_sequence<sizeof...(Ts)>());
  }
};

/// Aggregate map: composite key -> value; integer entries reaching zero are
/// erased so the live key set tracks the aggregate's support.
template <typename K, typename V>
class Map {
 public:
  using Store = std::unordered_map<K, V, TupleHash>;

  V get(const K& k) const {
    auto it = data_.find(k);
    return it == data_.end() ? V{} : it->second;
  }
  bool contains(const K& k) const { return data_.find(k) != data_.end(); }

  void add(const K& k, V delta) {
    if (delta == V{}) return;
    auto [it, inserted] = data_.try_emplace(k, delta);
    if (inserted) return;
    it->second += delta;
    if constexpr (std::is_integral_v<V>) {
      if (it->second == V{}) data_.erase(it);
    }
  }

  void set(const K& k, V v) {
    if (v == V{}) {
      data_.erase(k);
      return;
    }
    data_[k] = v;
  }

  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }
  const Store& entries() const { return data_; }

 private:
  Store data_;
};

/// Secondary slice index: prefix tuple -> set of full keys. Entries may be
/// stale after map erasure; readers re-check the map value (a zero read
/// contributes nothing). This reproduces the nested-map access paths of the
/// paper's generated code (q_1_bc[b][c]).
template <typename P, typename K>
class SliceIndex {
 public:
  using KeySet = std::unordered_set<K, TupleHash>;

  void insert(const P& prefix, const K& full_key) {
    data_[prefix].insert(full_key);
  }
  const KeySet* lookup(const P& prefix) const {
    auto it = data_.find(prefix);
    return it == data_.end() ? nullptr : &it->second;
  }
  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }

 private:
  std::unordered_map<P, KeySet, TupleHash> data_;
};

/// Ordered multiset per group: MIN/MAX maintenance under deletions.
///
/// Counts may go negative transiently when a batch reorders a delete ahead
/// of its insert (the ring semantics of the base tables); min/max skip
/// non-positive counts, and counts returning to zero are erased.
template <typename K, typename V>
class ExtremeMap {
 public:
  void add(const K& k, const V& v) { Bump(k, v, +1); }
  void remove(const K& k, const V& v) { Bump(k, v, -1); }
  bool min(const K& k, V* out) const {
    auto git = data_.find(k);
    if (git == data_.end()) return false;
    for (const auto& [value, count] : git->second) {
      if (count > 0) {
        *out = value;
        return true;
      }
    }
    return false;
  }
  bool max(const K& k, V* out) const {
    auto git = data_.find(k);
    if (git == data_.end()) return false;
    for (auto it = git->second.rbegin(); it != git->second.rend(); ++it) {
      if (it->second > 0) {
        *out = it->first;
        return true;
      }
    }
    return false;
  }
  size_t size() const { return data_.size(); }

 private:
  void Bump(const K& k, const V& v, int64_t delta) {
    auto& group = data_[k];
    auto [it, inserted] = group.try_emplace(v, delta);
    if (!inserted && (it->second += delta) == 0) group.erase(it);
    if (group.empty()) data_.erase(k);
  }

  std::unordered_map<K, std::map<V, int64_t>, TupleHash> data_;
};

/// One batch of deltas at the dynamic boundary, grouped per (relation, op)
/// in first-encounter order. Mirrors runtime::EventBatch without depending
/// on it (this header stays self-contained).
class EventBatch {
 public:
  struct Group {
    std::string relation;
    bool is_insert = true;
    std::vector<std::vector<Value>> tuples;
  };

  void add(const std::string& relation, bool is_insert,
           std::vector<Value> tuple) {
    if (!groups_.empty() && groups_.back().is_insert == is_insert &&
        groups_.back().relation == relation) {
      groups_.back().tuples.push_back(std::move(tuple));
      ++events_;
      return;
    }
    for (Group& g : groups_) {
      if (g.is_insert == is_insert && g.relation == relation) {
        g.tuples.push_back(std::move(tuple));
        ++events_;
        return;
      }
    }
    groups_.push_back(Group{relation, is_insert, {std::move(tuple)}});
    ++events_;
  }

  const std::vector<Group>& groups() const { return groups_; }
  size_t size() const { return events_; }
  bool empty() const { return events_ == 0; }
  void clear() {
    groups_.clear();
    events_ = 0;
  }

 private:
  std::vector<Group> groups_;
  size_t events_ = 0;
};

/// Abstract driver interface implemented by every dbtc-generated program:
/// the string-dispatch shim that makes generated code drivable through the
/// same engine-agnostic surface as the interpreted engines (see
/// runtime::CompiledProgramEngine). The typed per-relation handlers remain
/// the fast path for embedded use.
class StreamProgram {
 public:
  virtual ~StreamProgram() = default;

  /// Dispatch one delta; false when the program has no trigger for it.
  virtual bool on_event(const std::string& relation, bool is_insert,
                        const std::vector<Value>& tuple) = 0;

  /// Dispatch one batch group-wise; returns the number of events handled.
  /// Generated programs override with fused per-relation batch handlers
  /// (one relation dispatch and one tuple conversion pass per group).
  virtual size_t on_batch(const EventBatch& batch) {
    size_t handled = 0;
    for (const auto& g : batch.groups()) {
      for (const auto& t : g.tuples) {
        if (on_event(g.relation, g.is_insert, t)) ++handled;
      }
    }
    return handled;
  }

  /// Registered view names, in declaration order.
  virtual std::vector<std::string> view_names() const = 0;

  /// Output column names of `view` (empty for unknown views).
  virtual std::vector<std::string> view_column_names(
      const std::string& view) const = 0;

  /// Materialized rows of `view` at the dynamic boundary (empty for unknown
  /// views); the typed view_<name>() accessors avoid the conversion.
  virtual std::vector<std::vector<Value>> view_rows(
      const std::string& view) = 0;

  /// Total live entries across aggregate maps.
  virtual size_t total_map_entries() const = 0;

  /// Rough retained-bytes estimate of the maintained state.
  virtual size_t state_bytes() const = 0;
};

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
