// Standalone runtime support for DBToaster-generated C++ code.
//
// Generated event handlers depend on this header ONLY — no other part of
// the repository — so emitted sources can be compiled into any application
// (the paper's "embedded mode"). Keep it minimal and allocation-conscious:
// the whole point of compilation is straight-line code over hash maps.
#ifndef DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
#define DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

namespace dbt {

/// Dynamic value used only at the string-dispatch boundary; the generated
/// handler bodies are fully typed.
using Value = std::variant<int64_t, double, std::string>;

inline int64_t AsInt(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v);
  if (std::holds_alternative<double>(v)) {
    return static_cast<int64_t>(std::get<double>(v));
  }
  return 0;
}
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return 0.0;
}
inline const std::string& AsString(const Value& v) {
  static const std::string kEmpty;
  if (std::holds_alternative<std::string>(v)) return std::get<std::string>(v);
  return kEmpty;
}

/// SQL-style division: x/0 == 0.
inline double SafeDiv(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

namespace internal {

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline size_t HashScalar(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}
inline size_t HashScalar(double v) {
  if (v == static_cast<int64_t>(v)) {
    return Mix64(static_cast<uint64_t>(static_cast<int64_t>(v)));
  }
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits);
}
inline size_t HashScalar(const std::string& v) {
  return std::hash<std::string>()(v);
}

template <typename Tuple, size_t... I>
size_t HashTupleImpl(const Tuple& t, std::index_sequence<I...>) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  ((h ^= HashScalar(std::get<I>(t)) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2)),
   ...);
  return h;
}

}  // namespace internal

/// Hash functor for std::tuple keys.
struct TupleHash {
  template <typename... Ts>
  size_t operator()(const std::tuple<Ts...>& t) const {
    return internal::HashTupleImpl(
        t, std::make_index_sequence<sizeof...(Ts)>());
  }
};

/// Aggregate map: composite key -> value; integer entries reaching zero are
/// erased so the live key set tracks the aggregate's support.
template <typename K, typename V>
class Map {
 public:
  using Store = std::unordered_map<K, V, TupleHash>;

  V get(const K& k) const {
    auto it = data_.find(k);
    return it == data_.end() ? V{} : it->second;
  }
  bool contains(const K& k) const { return data_.find(k) != data_.end(); }

  void add(const K& k, V delta) {
    if (delta == V{}) return;
    auto [it, inserted] = data_.try_emplace(k, delta);
    if (inserted) return;
    it->second += delta;
    if constexpr (std::is_integral_v<V>) {
      if (it->second == V{}) data_.erase(it);
    }
  }

  void set(const K& k, V v) {
    if (v == V{}) {
      data_.erase(k);
      return;
    }
    data_[k] = v;
  }

  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }
  const Store& entries() const { return data_; }

 private:
  Store data_;
};

/// Secondary slice index: prefix tuple -> set of full keys. Entries may be
/// stale after map erasure; readers re-check the map value (a zero read
/// contributes nothing). This reproduces the nested-map access paths of the
/// paper's generated code (q_1_bc[b][c]).
template <typename P, typename K>
class SliceIndex {
 public:
  using KeySet = std::unordered_set<K, TupleHash>;

  void insert(const P& prefix, const K& full_key) {
    data_[prefix].insert(full_key);
  }
  const KeySet* lookup(const P& prefix) const {
    auto it = data_.find(prefix);
    return it == data_.end() ? nullptr : &it->second;
  }
  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }

 private:
  std::unordered_map<P, KeySet, TupleHash> data_;
};

/// Ordered multiset per group: MIN/MAX maintenance under deletions.
template <typename K, typename V>
class ExtremeMap {
 public:
  void add(const K& k, const V& v) { data_[k][v] += 1; }
  void remove(const K& k, const V& v) {
    auto git = data_.find(k);
    if (git == data_.end()) return;
    auto vit = git->second.find(v);
    if (vit == git->second.end()) return;
    if (--vit->second <= 0) git->second.erase(vit);
    if (git->second.empty()) data_.erase(git);
  }
  bool min(const K& k, V* out) const {
    auto git = data_.find(k);
    if (git == data_.end() || git->second.empty()) return false;
    *out = git->second.begin()->first;
    return true;
  }
  bool max(const K& k, V* out) const {
    auto git = data_.find(k);
    if (git == data_.end() || git->second.empty()) return false;
    *out = git->second.rbegin()->first;
    return true;
  }
  size_t size() const { return data_.size(); }

 private:
  std::unordered_map<K, std::map<V, int64_t>, TupleHash> data_;
};

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
