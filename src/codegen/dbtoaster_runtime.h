// Standalone runtime support for DBToaster-generated C++ code.
//
// Generated event handlers depend on this header ONLY — no other part of
// the repository — so emitted sources can be compiled into any application
// (the paper's "embedded mode"). Keep it minimal and allocation-conscious:
// the whole point of compilation is straight-line code over hash maps.
#ifndef DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
#define DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <type_traits>
#include <variant>
#include <vector>

#include "dbt_flat_map.h"
#include "dbt_select.h"
#include "dbt_serialize.h"
#include "dbt_shard_pool.h"

namespace dbt {

/// Dynamic value used only at the string-dispatch boundary; the generated
/// handler bodies are fully typed.
using Value = std::variant<int64_t, double, std::string>;

inline int64_t AsInt(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return std::get<int64_t>(v);
  if (std::holds_alternative<double>(v)) {
    return static_cast<int64_t>(std::get<double>(v));
  }
  return 0;
}
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return 0.0;
}
inline const std::string& AsString(const Value& v) {
  static const std::string kEmpty;
  if (std::holds_alternative<std::string>(v)) return std::get<std::string>(v);
  return kEmpty;
}

/// SQL-style division: x/0 == 0.
inline double SafeDiv(double num, double den) {
  return den == 0.0 ? 0.0 : num / den;
}

/// SQL LIKE: '%' matches any run, '_' any single character. Matches the
/// interpreter's dbtoaster::LikeMatch exactly (no escape character).
inline bool Like(const std::string& s, const std::string& pattern) {
  size_t si = 0, pi = 0;
  size_t star_pi = std::string::npos, star_si = 0;
  while (si < s.size()) {
    if (pi < pattern.size() && (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      si = ++star_si;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

/// Civil-calendar EXTRACT over days-since-epoch dates (Howard Hinnant's
/// civil_from_days; identical to the interpreter's DaysToCivil).
inline void CivilFromDays(int64_t days, int64_t* y, int64_t* m, int64_t* d) {
  const int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2 ? 1 : 0);
}
inline int64_t ExtractYear(int64_t days) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}
inline int64_t ExtractMonth(int64_t days) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return m;
}
inline int64_t ExtractDay(int64_t days) {
  int64_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return d;
}

/// Outcome of a map mutation, consumed by the generated upd_/st_ wrappers
/// to maintain secondary slice indexes eagerly (no stale growth).
enum class Upd : uint8_t {
  kUnchanged = 0,  ///< no-op (zero delta): index state already correct
  kLive = 1,       ///< entry exists after the update
  kErased = 2,     ///< entry was removed (or set to zero)
};

/// Aggregate map: composite key -> value; integer entries reaching zero are
/// erased so the live key set tracks the aggregate's support. Backed by the
/// robin-hood FlatMap with pooled storage (see dbt_flat_map.h).
template <typename K, typename V>
class Map {
 public:
  using Store = FlatMap<K, V, TupleHash>;

  V get(const K& k) const {
    const V* v = data_.find(k);
    return v == nullptr ? V{} : *v;
  }
  bool contains(const K& k) const { return data_.contains(k); }

  /// Mutable slot of a live entry (nullptr when absent). The run-batched
  /// commit path in generated batch handlers hoists one probe per distinct
  /// key run and accumulates through the pointer; valid only until the next
  /// insertion into this map. Double-valued entries are never erased by
  /// add(), so `*slot += delta` per row is exactly the add() sequence.
  V* find_value(const K& k) { return data_.find(k); }

  Upd add(const K& k, V delta) {
    if (delta == V{}) return Upd::kUnchanged;
    auto [i, inserted] = data_.try_emplace(k, delta);
    if (inserted) return Upd::kLive;
    V& val = data_.value_at(i);
    val += delta;
    if constexpr (std::is_integral_v<V>) {
      if (val == V{}) {
        data_.erase_at(i);
        return Upd::kErased;
      }
    }
    return Upd::kLive;
  }

  Upd set(const K& k, V v) {
    if (v == V{}) {
      data_.erase(k);
      return Upd::kErased;
    }
    auto [i, inserted] = data_.try_emplace(k, v);
    if (!inserted) data_.value_at(i) = std::move(v);
    return Upd::kLive;
  }

  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }
  const Store& entries() const { return data_; }

  /// Visit every live (key, value) entry; used by generated load_state to
  /// rebuild slice indexes and by Sharded to fan iteration over parts.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& e : data_) f(e.first, e.second);
  }

  /// Raw insert for deserialization: unlike set(), never interprets the
  /// value (a restored double 0.0 entry must survive — its presence in the
  /// live key set is state, see the class comment on integer erasure).
  void restore_entry(const K& k, const V& v) {
    auto [i, inserted] = data_.try_emplace(k, v);
    if (!inserted) data_.value_at(i) = v;
  }

  void save(Ser& s) const {
    s.u64(data_.size());
    for (const auto& e : data_) {
      Write(s, e.first);
      Write(s, e.second);
    }
  }
  bool load(Deser& d) {
    data_.clear();
    const uint64_t n = d.u64();
    for (uint64_t i = 0; i < n && d.ok(); ++i) {
      K k{};
      V v{};
      Read(d, &k);
      Read(d, &v);
      if (d.ok()) restore_entry(k, v);
    }
    return d.ok();
  }

  /// True slab-resident footprint plus spilled string payloads.
  size_t bytes() const {
    size_t n = sizeof(*this) + data_.pool_bytes();
    for (const auto& e : data_) n += ExternalBytes(e.first);
    return n;
  }

 private:
  Store data_;
};

/// Secondary slice index: prefix tuple -> set of full keys, maintained
/// eagerly by the generated mutation wrappers (full keys are erased when
/// the owning Map erases a zeroed entry). All key-sets draw from the
/// index's slab, so retired probe arrays are recycled across prefixes.
/// Readers still re-check the map value (a zero read contributes nothing):
/// hybrid re-evaluation statements clear maps without going through the
/// wrappers. This reproduces the nested-map access paths of the paper's
/// generated code (q_1_bc[b][c]).
template <typename P, typename K>
class SliceIndex {
 public:
  using KeySet = FlatSet<K, TupleHash>;

  SliceIndex() : slab_(new Slab), data_(slab_.get()) {}

  void insert(const P& prefix, const K& full_key) {
    auto [i, inserted] =
        data_.try_emplace_with(prefix, [&] { return KeySet(slab_.get()); });
    data_.value_at(i).insert(full_key);
  }
  void erase(const P& prefix, const K& full_key) {
    KeySet* set = data_.find(prefix);
    if (set == nullptr) return;
    set->erase(full_key);
    if (set->empty()) data_.erase(prefix);
  }
  const KeySet* lookup(const P& prefix) const { return data_.find(prefix); }
  void clear() { data_.clear(); }
  size_t size() const { return data_.size(); }

  size_t bytes() const {
    size_t n = sizeof(*this) + sizeof(Slab) + slab_->reserved_bytes();
    for (const auto& e : data_) {
      n += ExternalBytes(e.first);
      for (const K& k : e.second) n += ExternalBytes(k);
    }
    return n;
  }

 private:
  std::unique_ptr<Slab> slab_;  // stable address shared with the key-sets
  FlatMap<P, KeySet, TupleHash> data_;
};

/// Ordered multiset per group: MIN/MAX maintenance under deletions.
///
/// Counts may go negative transiently when a batch reorders a delete ahead
/// of its insert (the ring semantics of the base tables); min/max skip
/// non-positive counts, and counts returning to zero are erased. Each group
/// tracks its live (positive-count) value count, so groups holding only
/// debts answer min/max without scanning.
template <typename K, typename V>
class ExtremeMap {
 public:
  void add(const K& k, const V& v) { Bump(k, v, +1); }
  void remove(const K& k, const V& v) { Bump(k, v, -1); }
  /// Sign-parameterized form used by unified trigger bodies: +1 inserts the
  /// value into the group's multiset, -1 retracts it.
  void update(const K& k, const V& v, int64_t sign) { Bump(k, v, sign); }
  bool min(const K& k, V* out) const {
    const Group* g = data_.find(k);
    if (g == nullptr || g->live == 0) return false;
    for (const auto& [value, count] : g->counts) {
      if (count > 0) {
        *out = value;
        return true;
      }
    }
    return false;
  }
  bool max(const K& k, V* out) const {
    const Group* g = data_.find(k);
    if (g == nullptr || g->live == 0) return false;
    for (auto it = g->counts.rbegin(); it != g->counts.rend(); ++it) {
      if (it->second > 0) {
        *out = it->first;
        return true;
      }
    }
    return false;
  }
  size_t size() const { return data_.size(); }

  /// Counts are saved signed: a group holding only debts (negative counts
  /// from a delete reordered ahead of its insert) is real state and must
  /// survive a snapshot/restore cycle, or later inserts would resurrect
  /// values the stream already retracted.
  void save(Ser& s) const {
    s.u64(data_.size());
    for (const auto& e : data_) {
      Write(s, e.first);
      s.u64(e.second.counts.size());
      for (const auto& [value, count] : e.second.counts) {
        Write(s, value);
        s.i64(count);
      }
    }
  }
  bool load(Deser& d) {
    data_.clear();
    const uint64_t groups = d.u64();
    for (uint64_t g = 0; g < groups && d.ok(); ++g) {
      K k{};
      Read(d, &k);
      const uint64_t values = d.u64();
      for (uint64_t i = 0; i < values && d.ok(); ++i) {
        V v{};
        Read(d, &v);
        const int64_t count = d.i64();
        // Bump by the full signed count: live and the ordered multiset are
        // reconstructed exactly (zero counts are never saved).
        if (d.ok()) Bump(k, v, count);
      }
    }
    return d.ok();
  }

  size_t bytes() const {
    size_t n = sizeof(*this) + data_.pool_bytes();
    for (const auto& e : data_) {
      n += ExternalBytes(e.first);
      // std::map node: value, count, three pointers + color, rounded up.
      n += e.second.counts.size() * (sizeof(V) + sizeof(int64_t) + 40);
    }
    return n;
  }

 private:
  struct Group {
    std::map<V, int64_t> counts;
    int64_t live = 0;  ///< number of values with a positive count
  };

  void Bump(const K& k, const V& v, int64_t delta) {
    auto [i, inserted] = data_.try_emplace(k);
    Group& g = data_.value_at(i);
    auto [it, vnew] = g.counts.try_emplace(v, 0);
    const int64_t before = it->second;
    const int64_t after = (it->second += delta);
    g.live += static_cast<int64_t>(after > 0) - static_cast<int64_t>(before > 0);
    if (after == 0) g.counts.erase(it);
    if (g.counts.empty()) data_.erase_at(i);
  }

  FlatMap<K, Group, TupleHash> data_;
};

/// One typed column of a batch group. The tag is fixed by the first tuple
/// appended (dates travel as int64 days, matching the engine's value
/// model), and later tuples are coerced onto it, so a group's storage is
/// three flat arrays at most — the layout generated on_batch_<R> handlers
/// scan directly.
struct EventColumn {
  enum class Tag : uint8_t { kI64 = 0, kF64 = 1, kStr = 2 };

  Tag tag = Tag::kI64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  static Tag TagOf(const Value& v) {
    if (std::holds_alternative<double>(v)) return Tag::kF64;
    if (std::holds_alternative<std::string>(v)) return Tag::kStr;
    return Tag::kI64;
  }

  void push(const Value& v) {
    switch (tag) {
      case Tag::kI64: i64.push_back(AsInt(v)); break;
      case Tag::kF64: f64.push_back(AsDouble(v)); break;
      case Tag::kStr: str.push_back(AsString(v)); break;
    }
  }

  Value get(size_t i) const {
    switch (tag) {
      case Tag::kF64: return Value(f64[i]);
      case Tag::kStr: return Value(str[i]);
      default: return Value(i64[i]);
    }
  }
};

/// One batch of deltas at the dynamic boundary, grouped per (relation, op)
/// in first-encounter order with columnar per-group storage. Mirrors
/// runtime::EventBatch without depending on it (this header stays
/// self-contained). The row-oriented add()/row() shim is the compatibility
/// surface; generated handlers consume the columns natively.
class EventBatch {
 public:
  struct Group {
    std::string relation;
    bool is_insert = true;
    std::vector<EventColumn> cols;
    size_t rows = 0;

    void add(const std::vector<Value>& tuple) {
      if (cols.size() < tuple.size()) {
        cols.resize(tuple.size());
        for (size_t c = 0; c < tuple.size(); ++c) {
          if (cols[c].i64.empty() && cols[c].f64.empty() &&
              cols[c].str.empty()) {
            cols[c].tag = EventColumn::TagOf(tuple[c]);
          }
        }
      }
      for (size_t c = 0; c < cols.size(); ++c) {
        cols[c].push(c < tuple.size() ? tuple[c] : Value(int64_t{0}));
      }
      ++rows;
    }

    std::vector<Value> row(size_t i) const {
      std::vector<Value> out;
      out.reserve(cols.size());
      for (const EventColumn& c : cols) out.push_back(c.get(i));
      return out;
    }
  };

  void add(const std::string& relation, bool is_insert,
           const std::vector<Value>& tuple) {
    find_group(relation, is_insert).add(tuple);
    ++events_;
  }

  /// Append a pre-built columnar group (the zero-conversion ingest path);
  /// merges into an existing (relation, op) group if one exists.
  void add_group(Group&& g) {
    events_ += g.rows;
    for (Group& existing : groups_) {
      if (existing.is_insert == g.is_insert &&
          existing.relation == g.relation) {
        for (size_t i = 0; i < g.rows; ++i) existing.add(g.row(i));
        return;
      }
    }
    groups_.push_back(std::move(g));
  }

  const std::vector<Group>& groups() const { return groups_; }
  size_t size() const { return events_; }
  bool empty() const { return events_ == 0; }
  void clear() {
    groups_.clear();
    events_ = 0;
  }

 private:
  Group& find_group(const std::string& relation, bool is_insert) {
    // Streams run long (relation, op) bursts; check the most recent group
    // first (the group count is bounded by 2 * #relations).
    if (!groups_.empty() && groups_.back().is_insert == is_insert &&
        groups_.back().relation == relation) {
      return groups_.back();
    }
    for (Group& g : groups_) {
      if (g.is_insert == is_insert && g.relation == relation) return g;
    }
    groups_.push_back(Group{relation, is_insert, {}, 0});
    return groups_.back();
  }

  std::vector<Group> groups_;
  size_t events_ = 0;
};

/// Lane schema of one relation at the dynamic boundary: the EventColumn
/// tags the program expects for each column (dates travel as kI64).
/// Published by generated programs so a driving engine can validate batch
/// arity and lane types before they reach the typed handlers.
struct RelationSchema {
  std::string name;
  std::vector<EventColumn::Tag> lanes;
};

/// One registered view's materialized rows at a publish point (the unit of
/// the snapshot-publish hook below).
struct ViewRows {
  std::string name;
  std::vector<std::vector<Value>> rows;
};

/// Abstract driver interface implemented by every dbtc-generated program:
/// the string-dispatch shim that makes generated code drivable through the
/// same engine-agnostic surface as the interpreted engines (see
/// runtime::CompiledProgramEngine). The typed per-relation handlers remain
/// the fast path for embedded use.
class StreamProgram {
 public:
  virtual ~StreamProgram() = default;

  /// Dispatch one delta; false when the program has no trigger for it.
  virtual bool on_event(const std::string& relation, bool is_insert,
                        const std::vector<Value>& tuple) = 0;

  /// Dispatch one batch group-wise; returns the number of events handled.
  /// Generated programs override with fused per-relation batch handlers
  /// (one relation dispatch and one tuple conversion pass per group).
  virtual size_t on_batch(const EventBatch& batch) {
    size_t handled = 0;
    for (const auto& g : batch.groups()) {
      for (size_t i = 0; i < g.rows; ++i) {
        if (on_event(g.relation, g.is_insert, g.row(i))) ++handled;
      }
    }
    return handled;
  }

  /// Registered view names, in declaration order.
  virtual std::vector<std::string> view_names() const = 0;

  /// Output column names of `view` (empty for unknown views).
  virtual std::vector<std::string> view_column_names(
      const std::string& view) const = 0;

  /// Materialized rows of `view` at the dynamic boundary (empty for unknown
  /// views); the typed view_<name>() accessors avoid the conversion.
  virtual std::vector<std::vector<Value>> view_rows(
      const std::string& view) = 0;

  /// Snapshot-publish hook: materialize every registered view in one call
  /// against the current state. The concurrent serving tier invokes this at
  /// publish time so each ingest epoch yields one consistent rendering of
  /// all views; generated programs override it (and the generated-header
  /// lint asserts the override), the default falls back to view_rows.
  virtual std::vector<ViewRows> publish_snapshot() {
    std::vector<ViewRows> out;
    for (const std::string& v : view_names()) {
      out.push_back(ViewRows{v, view_rows(v)});
    }
    return out;
  }

  /// Vectorized-selection instrumentation (bench counters; see
  /// dbt_select.h). Programs compiled without a selection prologue report 0.
  /// `selected_rows` counts rows surviving a selection pass; `probe_runs`
  /// counts run-batched map commits (one per distinct key run).
  virtual uint64_t selected_rows() const { return 0; }
  virtual uint64_t probe_runs() const { return 0; }

  /// Total live entries across aggregate maps.
  virtual size_t total_map_entries() const = 0;

  /// Rough retained-bytes estimate of the maintained state.
  virtual size_t state_bytes() const = 0;

  /// Relation lane schemas for boundary validation (empty when the program
  /// predates schema publication; drivers then skip validation). Generated
  /// programs return every catalog relation, so base-table-only relations
  /// validate and are ignored by dispatch, exactly like the interpreter.
  virtual std::vector<RelationSchema> relation_schemas() const { return {}; }

  /// Serialize / restore the program's maintained state (aggregate maps,
  /// base multisets, extreme multisets; slice indexes are rebuilt on load).
  /// Return false when the program does not implement state capture (the
  /// default, kept for hand-written StreamProgram shims); generated
  /// programs override both. load_state must leave a program either fully
  /// restored (true) or report failure (false) — callers treat false as a
  /// corrupt snapshot, not a partial success.
  virtual bool save_state(Ser& ser) const {
    (void)ser;
    return false;
  }
  virtual bool load_state(Deser& deser) {
    (void)deser;
    return false;
  }
};

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBTOASTER_RUNTIME_H_
