// Self-contained binary serialization for generated-code state: a CRC32
// implementation, a byte-buffer writer (Ser) and a bounds-checked reader
// (Deser), plus Write/Read overloads over the scalar and tuple shapes the
// generated containers hold. Like the rest of the dbt runtime headers this
// depends on the standard library only, so emitted sources stay compilable
// outside the repository (the paper's "embedded mode").
//
// Encoding: little-endian fixed-width integers (memcpy'd, so bit-exact for
// doubles via their u64 image) and u64-length-prefixed strings. Nothing is
// varint-compressed — checkpoints are bulk state dumps where decode speed
// and torn-read detectability matter more than byte count.
#ifndef DBTOASTER_CODEGEN_DBT_SERIALIZE_H_
#define DBTOASTER_CODEGEN_DBT_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>

namespace dbt {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum used
/// by both the checkpoint format and the batch-log record frames.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  static const auto table = [] {
    struct Table {
      uint32_t v[256];
    } t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t.v[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table.v[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Append-only byte-buffer writer.
class Ser {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) { Raw(&v, sizeof(v)); }
  void u64(uint64_t v) { Raw(&v, sizeof(v)); }
  void i64(int64_t v) { Raw(&v, sizeof(v)); }
  void f64(double v) { Raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void bytes(const void* p, size_t n) { Raw(p, n); }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  void Raw(const void* p, size_t n) {
    // Fixed-width little-endian on every supported target (the repo builds
    // on x86-64/aarch64 Linux); memcpy keeps doubles bit-exact.
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
};

/// Bounds-checked reader over an immutable byte range. Any underrun flips
/// ok() to false and every subsequent read returns a zero value, so decode
/// loops can run to completion and check ok() once at the end.
class Deser {
 public:
  Deser(const void* data, size_t len)
      : p_(static_cast<const char*>(data)), n_(len) {}
  explicit Deser(const std::string& s) : Deser(s.data(), s.size()) {}

  uint8_t u8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t u32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t u64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int64_t i64() {
    int64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string str() {
    const uint64_t len = u64();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(p_ + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - pos_; }
  /// A fully-consumed, error-free decode (trailing bytes mean the payload
  /// and the decoder disagree about the format — treat as corruption).
  bool done() const { return ok_ && pos_ == n_; }

 private:
  void Raw(void* out, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(out, p_ + pos_, n);
    pos_ += n;
  }

  const char* p_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Write/Read overloads over generated-container element shapes -------

inline void Write(Ser& s, int64_t v) { s.i64(v); }
inline void Write(Ser& s, double v) { s.f64(v); }
inline void Write(Ser& s, const std::string& v) { s.str(v); }
template <typename... Ts>
void Write(Ser& s, const std::tuple<Ts...>& t) {
  std::apply([&s](const Ts&... es) { (Write(s, es), ...); }, t);
}

inline void Read(Deser& d, int64_t* v) { *v = d.i64(); }
inline void Read(Deser& d, double* v) { *v = d.f64(); }
inline void Read(Deser& d, std::string* v) { *v = d.str(); }
template <typename... Ts>
void Read(Deser& d, std::tuple<Ts...>* t) {
  std::apply([&d](Ts&... es) { (Read(d, &es), ...); }, *t);
}

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBT_SERIALIZE_H_
