#include "src/codegen/cpp_gen.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <set>

#include "src/common/str.h"
#include "src/compiler/tir.h"
#include "src/compiler/tir_verify.h"
#include "src/ring/expr.h"

namespace dbtoaster::codegen {

using compiler::MapDecl;
using compiler::Program;
using compiler::Statement;
using compiler::Trigger;
using compiler::ViewColumn;
using compiler::ViewSpec;
using ring::Expr;
using ring::ExprPtr;
using ring::Term;
using ring::TermPtr;

namespace {

const char* CppType(Type t) {
  switch (t) {
    case Type::kInt:
    case Type::kDate:
      return "int64_t";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "std::string";
  }
  return "int64_t";
}

std::string KeyType(const std::vector<Type>& key_types) {
  std::vector<std::string> parts;
  for (Type t : key_types) parts.emplace_back(CppType(t));
  return "std::tuple<" + Join(parts, ", ") + ">";
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

std::string ValueLiteral(const Value& v) {
  if (v.is_string()) return EscapeString(v.AsString());
  if (v.is_double()) return StrFormat("%.17g", v.AsDouble());
  return StrFormat("INT64_C(%lld)", static_cast<long long>(v.AsInt()));
}

const char* SelOpName(sql::BinOp op) {
  switch (op) {
    case sql::BinOp::kEq: return "dbt::SelOp::kEq";
    case sql::BinOp::kNeq: return "dbt::SelOp::kNe";
    case sql::BinOp::kLt: return "dbt::SelOp::kLt";
    case sql::BinOp::kLe: return "dbt::SelOp::kLe";
    case sql::BinOp::kGt: return "dbt::SelOp::kGt";
    case sql::BinOp::kGe: return "dbt::SelOp::kGe";
    default: return "dbt::SelOp::kEq";
  }
}

/// EventBatch column element type backing a trigger parameter lane.
const char* ColElem(Type t) {
  switch (t) {
    case Type::kDouble: return "double";
    case Type::kString: return "std::string";
    default: return "int64_t";
  }
}

/// Equality of extracted guard sets as multisets (order-insensitive).
bool SamePredSet(const std::vector<tir::PredSpec>& a,
                 const std::vector<tir::PredSpec>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const tir::PredSpec& pa : a) {
    bool found = false;
    for (size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && tir::PredSpecEquals(pa, b[j])) {
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Collect ring atoms of `e` whose argument lists are not fully bound by
/// `bound`: slices and scans, whose contribution order is the iterated
/// store's internal layout. Point accesses (all args bound) read values
/// only and are layout-independent.
void CollectIteratedStores(const ExprPtr& e, const std::set<std::string>& bound,
                           std::set<std::string>* iterated) {
  if (e == nullptr) return;
  if (e->kind == ring::ExprKind::kRel || e->kind == ring::ExprKind::kMapRef) {
    for (const std::string& a : e->args) {
      if (bound.count(a) == 0) {
        iterated->insert(e->name);
        return;
      }
    }
    return;
  }
  for (const ExprPtr& c : e->children) {
    CollectIteratedStores(c, bound, iterated);
  }
}

/// Collect every store name the expression can read back at runtime: kRel
/// scans, kMapRef reads, and map reads buried inside value terms, lifts,
/// and comparison operands.
void CollectReadStores(const ExprPtr& e, std::set<std::string>* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ring::ExprKind::kRel:
    case ring::ExprKind::kMapRef:
      out->insert(e->name);
      break;
    case ring::ExprKind::kValTerm:
    case ring::ExprKind::kLift:
      if (e->term != nullptr) e->term->CollectMapReads(out);
      break;
    case ring::ExprKind::kCmp:
      if (e->cmp_lhs != nullptr) e->cmp_lhs->CollectMapReads(out);
      if (e->cmp_rhs != nullptr) e->cmp_rhs->CollectMapReads(out);
      break;
    default:
      break;
  }
  for (const ExprPtr& c : e->children) CollectReadStores(c, out);
}

/// Per-program code generation context.
class Generator {
 public:
  Generator(const Program& program, const GenOptions& options)
      : p_(program), opts_(options), tir_(tir::Lower(program)) {
    for (const MapDecl& m : p_.maps) decls_[m.name] = &m;
    // Base relation maps: any relation whose trigger exists or that appears
    // in a statement RHS / init definition.
    for (const Trigger& t : p_.triggers) rels_.insert(t.relation);
    // Dead-store elimination for the base relation snapshots: rel_R_ is
    // materialized only when something can read it back — a statement RHS
    // scanning the relation, an init-on-access map definition, or a view
    // expression. A write-only snapshot (q6s's LINEITEM) costs one hash
    // update per event in every handler; eliding it is unobservable.
    std::set<std::string> reads;
    for (const Trigger& t : p_.triggers) {
      for (const Statement& s : t.statements) {
        CollectReadStores(s.rhs, &reads);
        CollectReadStores(s.extreme_guard, &reads);
        if (s.extreme_value != nullptr) {
          s.extreme_value->CollectMapReads(&reads);
        }
      }
    }
    for (const MapDecl& m : p_.maps) {
      if (m.needs_init) CollectReadStores(m.definition, &reads);
    }
    for (const ViewSpec& v : p_.views) {
      CollectReadStores(v.having, &reads);
      for (const ViewColumn& c : v.columns) {
        if (c.value != nullptr) c.value->CollectMapReads(&reads);
      }
    }
    for (const std::string& rel : rels_) {
      if (reads.count(rel) != 0) live_rels_.insert(rel);
    }
    AnalyzeShardPlan();
    ComputeRelaxedOk();
  }

  Result<std::string> Run();

 private:
  struct Env {
    /// variable -> C++ expression (already typed).
    std::map<std::string, std::string> vars;
    /// "true"/"false": may map initialiser results be cached?
    std::string store_flag = "false";
  };

  const Schema* RelSchema(const std::string& name) const {
    return p_.catalog.FindRelation(name);
  }

  std::string RelMapName(const std::string& rel) const {
    return "rel_" + rel + "_";
  }

  std::string Fresh(const std::string& base) {
    return StrFormat("%s%d", base.c_str(), ++temp_);
  }

  std::string Indent() const { return std::string(indent_ * 2, ' '); }
  void Line(std::string* out, const std::string& s) {
    *out += Indent() + s + "\n";
  }

  // ---- terms -------------------------------------------------------------

  Result<std::string> TermCpp(const TermPtr& t, const Env& env) {
    switch (t->kind) {
      case Term::Kind::kConst:
        return ValueLiteral(t->constant);
      case Term::Kind::kVar: {
        auto it = env.vars.find(t->var);
        if (it == env.vars.end()) {
          return Status::Internal("codegen: unbound variable " + t->var);
        }
        return it->second;
      }
      case Term::Kind::kMapRead: {
        std::vector<std::string> keys;
        for (const TermPtr& a : t->args) {
          DBT_ASSIGN_OR_RETURN(std::string k, TermCpp(a, env));
          keys.push_back(std::move(k));
        }
        const MapDecl* decl = decls_.count(t->map_name)
                                  ? decls_.at(t->map_name)
                                  : nullptr;
        if (decl == nullptr) {
          return Status::Internal("codegen: unknown map " + t->map_name);
        }
        std::string key = "std::make_tuple(" + Join(keys, ", ") + ")";
        if (decl->needs_init) {
          return StrFormat("%s_read(%s, %s)", decl->name.c_str(), key.c_str(),
                           env.store_flag.c_str());
        }
        return StrFormat("%s_.get(%s)", decl->name.c_str(), key.c_str());
      }
      case Term::Kind::kAdd:
      case Term::Kind::kSub:
      case Term::Kind::kMul: {
        DBT_ASSIGN_OR_RETURN(std::string l, TermCpp(t->lhs, env));
        DBT_ASSIGN_OR_RETURN(std::string r, TermCpp(t->rhs, env));
        const char* op = t->kind == Term::Kind::kAdd   ? "+"
                         : t->kind == Term::Kind::kSub ? "-"
                                                       : "*";
        return "(" + l + " " + op + " " + r + ")";
      }
      case Term::Kind::kDiv: {
        DBT_ASSIGN_OR_RETURN(std::string l, TermCpp(t->lhs, env));
        DBT_ASSIGN_OR_RETURN(std::string r, TermCpp(t->rhs, env));
        return "dbt::SafeDiv(static_cast<double>(" + l +
               "), static_cast<double>(" + r + "))";
      }
      case Term::Kind::kFunc1: {
        DBT_ASSIGN_OR_RETURN(std::string a, TermCpp(t->lhs, env));
        const char* fn = "dbt::ExtractYear";
        switch (t->func) {
          case sql::FuncKind::kExtractYear: fn = "dbt::ExtractYear"; break;
          case sql::FuncKind::kExtractMonth: fn = "dbt::ExtractMonth"; break;
          case sql::FuncKind::kExtractDay: fn = "dbt::ExtractDay"; break;
        }
        return StrFormat("%s(static_cast<int64_t>(%s))", fn, a.c_str());
      }
    }
    return Status::Internal("codegen: unhandled term kind");
  }

  static const char* CmpOp(sql::BinOp op) {
    switch (op) {
      case sql::BinOp::kEq: return "==";
      case sql::BinOp::kNeq: return "!=";
      case sql::BinOp::kLt: return "<";
      case sql::BinOp::kLe: return "<=";
      case sql::BinOp::kGt: return ">";
      case sql::BinOp::kGe: return ">=";
      default: return "==";
    }
  }

  // ---- expression loops ----------------------------------------------------

  /// Greedy factor ordering: delegates to the typed IR's planner so both
  /// backends loop in the same order (mirrors the interpreter's EvalProd).
  std::vector<ExprPtr> OrderFactors(const std::vector<ExprPtr>& factors,
                                    const Env& env) {
    std::set<std::string> bound;
    for (const auto& [v, cpp] : env.vars) bound.insert(v);
    return tir::OrderProductFactors(factors, bound);
  }

  using Sink = std::function<Status(const Env&, const std::string& value)>;

  /// Emit nested loops computing the contributions of `e` under `env`;
  /// `sink` is invoked at the innermost point with the multiplicative value
  /// expression (a product of factor values).
  Status EmitContribs(const ExprPtr& e, const Env& env, std::string* out,
                      const Sink& sink) {
    switch (e->kind) {
      case ring::ExprKind::kProd:
        return EmitProd(OrderFactors(e->children, env), 0, env, {}, out,
                        sink);
      case ring::ExprKind::kSum: {
        for (const ExprPtr& c : e->children) {
          DBT_RETURN_IF_ERROR(EmitContribs(c, env, out, sink));
        }
        return Status::OK();
      }
      default:
        return EmitProd({e}, 0, env, {}, out, sink);
    }
  }

  Status EmitProd(const std::vector<ExprPtr>& factors, size_t idx,
                  const Env& env, std::vector<std::string> values,
                  std::string* out, const Sink& sink) {
    if (idx == factors.size()) {
      std::string value =
          values.empty() ? std::string("INT64_C(1)") : Join(values, " * ");
      return sink(env, value);
    }
    const ExprPtr& f = factors[idx];
    switch (f->kind) {
      case ring::ExprKind::kConst: {
        values.push_back(ValueLiteral(f->constant));
        return EmitProd(factors, idx + 1, env, std::move(values), out, sink);
      }
      case ring::ExprKind::kValTerm: {
        DBT_ASSIGN_OR_RETURN(std::string v, TermCpp(f->term, env));
        values.push_back("(" + v + ")");
        return EmitProd(factors, idx + 1, env, std::move(values), out, sink);
      }
      case ring::ExprKind::kCmp: {
        DBT_ASSIGN_OR_RETURN(std::string l, TermCpp(f->cmp_lhs, env));
        DBT_ASSIGN_OR_RETURN(std::string r, TermCpp(f->cmp_rhs, env));
        if (f->cmp_op == sql::BinOp::kLike ||
            f->cmp_op == sql::BinOp::kNotLike) {
          Line(out, StrFormat("if (%sdbt::Like(%s, %s)) {",
                              f->cmp_op == sql::BinOp::kNotLike ? "!" : "",
                              l.c_str(), r.c_str()));
        } else {
          Line(out, StrFormat("if (%s %s %s) {", l.c_str(), CmpOp(f->cmp_op),
                              r.c_str()));
        }
        ++indent_;
        DBT_RETURN_IF_ERROR(
            EmitProd(factors, idx + 1, env, std::move(values), out, sink));
        --indent_;
        Line(out, "}");
        return Status::OK();
      }
      case ring::ExprKind::kLift: {
        DBT_ASSIGN_OR_RETURN(std::string t, TermCpp(f->term, env));
        auto it = env.vars.find(f->var);
        if (it != env.vars.end()) {
          Line(out, StrFormat("if (%s == %s) {", it->second.c_str(),
                              t.c_str()));
          ++indent_;
          DBT_RETURN_IF_ERROR(
              EmitProd(factors, idx + 1, env, std::move(values), out, sink));
          --indent_;
          Line(out, "}");
          return Status::OK();
        }
        std::string name = Fresh("v");
        Line(out, StrFormat("const auto %s = %s;", name.c_str(), t.c_str()));
        Env env2 = env;
        env2.vars[f->var] = name;
        return EmitProd(factors, idx + 1, env2, std::move(values), out, sink);
      }
      case ring::ExprKind::kNeg: {
        values.push_back("INT64_C(-1)");
        std::vector<ExprPtr> sub = factors;
        sub[idx] = f->children[0];
        return EmitProd(sub, idx, env, std::move(values), out, sink);
      }
      case ring::ExprKind::kRel:
      case ring::ExprKind::kMapRef: {
        bool is_rel = f->kind == ring::ExprKind::kRel;
        const MapDecl* decl = nullptr;
        std::string map_expr;
        if (is_rel) {
          map_expr = RelMapName(f->name);
        } else {
          decl = decls_.count(f->name) ? decls_.at(f->name) : nullptr;
          if (decl == nullptr) {
            return Status::Internal("codegen: unknown map " + f->name);
          }
          map_expr = decl->name + "_";
        }
        // Classify arguments.
        std::vector<std::string> bound_expr(f->args.size());
        std::vector<bool> is_bound(f->args.size(), false);
        std::map<std::string, size_t> first_of;
        std::vector<int> dup_of(f->args.size(), -1);
        bool all_bound = true;
        for (size_t i = 0; i < f->args.size(); ++i) {
          auto it = env.vars.find(f->args[i]);
          if (it != env.vars.end()) {
            is_bound[i] = true;
            bound_expr[i] = it->second;
            continue;
          }
          auto dup = first_of.find(f->args[i]);
          if (dup != first_of.end()) {
            dup_of[i] = static_cast<int>(dup->second);
            all_bound = false;
            continue;
          }
          first_of[f->args[i]] = i;
          all_bound = false;
        }
        if (all_bound) {
          // Point lookup.
          std::vector<std::string> keys;
          for (size_t i = 0; i < f->args.size(); ++i) {
            keys.push_back(bound_expr[i]);
          }
          std::string key =
              "std::make_tuple(" + Join(keys, ", ") + ")";
          std::string v = Fresh("v");
          if (!is_rel && decl->needs_init) {
            Line(out, StrFormat("const auto %s = %s_read(%s, %s);", v.c_str(),
                                decl->name.c_str(), key.c_str(),
                                env.store_flag.c_str()));
          } else {
            Line(out, StrFormat("const auto %s = %s.get(%s);", v.c_str(),
                                map_expr.c_str(), key.c_str()));
          }
          values.push_back(v);
          return EmitProd(factors, idx + 1, env, std::move(values), out,
                          sink);
        }
        // Slice access. With bound positions, go through a secondary slice
        // index (the nested-map access path of the paper's generated code);
        // otherwise scan all entries.
        std::vector<size_t> bpos;
        std::vector<std::string> bexprs;
        for (size_t i = 0; i < f->args.size(); ++i) {
          if (is_bound[i]) {
            bpos.push_back(i);
            bexprs.push_back(bound_expr[i]);
          }
        }
        // The shard plan admits point accesses only; a slice or scan here
        // would read across partitions while workers mutate them.
        if (plan_.ok) {
          return Status::Internal("codegen: non-point access under shard plan");
        }
        if (!bpos.empty()) {
          DBT_ASSIGN_OR_RETURN(StoreInfo info, StoreOf(f));
          std::string idx_name = RequestIndex(map_expr, bpos, info.key_types);
          std::string bucket = Fresh("b");
          std::string fk = Fresh("fk");
          std::string val = Fresh("v");
          Line(out, StrFormat("const auto* %s = %s.lookup(std::make_tuple(%s));",
                              bucket.c_str(), idx_name.c_str(),
                              Join(bexprs, ", ").c_str()));
          Line(out, StrFormat("if (%s != nullptr) for (const auto& %s : *%s) {",
                              bucket.c_str(), fk.c_str(), bucket.c_str()));
          ++indent_;
          Line(out, StrFormat("const auto %s = %s.get(%s);", val.c_str(),
                              map_expr.c_str(), fk.c_str()));
          Line(out, StrFormat("if (%s == 0) continue;  // stale index entry",
                              val.c_str()));
          Env env2 = env;
          for (size_t i = 0; i < f->args.size(); ++i) {
            std::string slot = StrFormat("std::get<%zu>(%s)", i, fk.c_str());
            if (is_bound[i]) continue;  // guaranteed equal by the index
            if (dup_of[i] >= 0) {
              Line(out, StrFormat("if (%s != std::get<%d>(%s)) continue;",
                                  slot.c_str(), dup_of[i], fk.c_str()));
            } else {
              std::string name = Fresh("v");
              Line(out, StrFormat("[[maybe_unused]] const auto %s = %s;",
                                  name.c_str(), slot.c_str()));
              env2.vars[f->args[i]] = name;
            }
          }
          std::vector<std::string> values2 = values;
          values2.push_back(val);
          DBT_RETURN_IF_ERROR(EmitProd(factors, idx + 1, env2,
                                       std::move(values2), out, sink));
          --indent_;
          Line(out, "}");
          return Status::OK();
        }
        std::string kv = Fresh("e");
        Line(out, StrFormat("for (const auto& %s : %s.entries()) {",
                            kv.c_str(), map_expr.c_str()));
        ++indent_;
        Env env2 = env;
        for (size_t i = 0; i < f->args.size(); ++i) {
          std::string slot =
              StrFormat("std::get<%zu>(%s.first)", i, kv.c_str());
          if (is_bound[i]) {
            Line(out, StrFormat("if (%s != %s) continue;", slot.c_str(),
                                bound_expr[i].c_str()));
          } else if (dup_of[i] >= 0) {
            Line(out, StrFormat("if (%s != std::get<%d>(%s.first)) continue;",
                                slot.c_str(), dup_of[i], kv.c_str()));
          } else {
            std::string name = Fresh("v");
            Line(out, StrFormat("[[maybe_unused]] const auto %s = %s;",
                                name.c_str(), slot.c_str()));
            env2.vars[f->args[i]] = name;
          }
        }
        std::vector<std::string> values2 = values;
        values2.push_back(kv + ".second");
        DBT_RETURN_IF_ERROR(
            EmitProd(factors, idx + 1, env2, std::move(values2), out, sink));
        --indent_;
        Line(out, "}");
        return Status::OK();
      }
      case ring::ExprKind::kAggSum: {
        // Scalar accumulation: all group vars must already be bound.
        for (const std::string& g : f->group_vars) {
          if (!env.vars.count(g)) {
            return Status::NotSupported(
                "codegen: AggSum factor with unbound group variable " + g);
          }
        }
        std::string acc = Fresh("acc");
        Line(out, StrFormat("double %s = 0;", acc.c_str()));
        Sink inner = [&](const Env& /*e2*/, const std::string& value) -> Status {
          Line(out, StrFormat("%s += static_cast<double>(%s);", acc.c_str(),
                              value.c_str()));
          return Status::OK();
        };
        DBT_RETURN_IF_ERROR(EmitContribs(f->children[0], env, out, inner));
        values.push_back(acc);
        return EmitProd(factors, idx + 1, env, std::move(values), out, sink);
      }
      case ring::ExprKind::kSum: {
        // 0/1 indicator sums (OR): accumulate into a scalar, then continue.
        std::string acc = Fresh("ind");
        Line(out, StrFormat("int64_t %s = 0;", acc.c_str()));
        Sink inner = [&](const Env& /*e2*/, const std::string& value) -> Status {
          Line(out, StrFormat("%s += (%s);", acc.c_str(), value.c_str()));
          return Status::OK();
        };
        for (const ExprPtr& c : f->children) {
          DBT_RETURN_IF_ERROR(EmitContribs(c, env, out, inner));
        }
        values.push_back(acc);
        return EmitProd(factors, idx + 1, env, std::move(values), out, sink);
      }
      case ring::ExprKind::kProd: {
        std::vector<ExprPtr> sub = factors;
        sub.erase(sub.begin() + static_cast<long>(idx));
        sub.insert(sub.begin() + static_cast<long>(idx),
                   f->children.begin(), f->children.end());
        return EmitProd(OrderFactors(sub, env), idx, env, std::move(values),
                        out, sink);
      }
      default:
        return Status::Internal("codegen: unexpected factor kind");
    }
  }

  // ---- statements ----------------------------------------------------------

  Status EmitDeltaStatement(const Statement& stmt, const Env& base_env,
                            const std::string& pend_name, std::string* out) {
    const MapDecl* decl = decls_.at(stmt.target);
    Line(out, "{  // " + stmt.ToString());
    ++indent_;

    auto emit_body = [&](const Env& env) -> Status {
      Sink sink = [&](const Env& e2, const std::string& value) -> Status {
        std::vector<std::string> keys;
        for (const std::string& kv : stmt.target_keys) {
          auto it = e2.vars.find(kv);
          if (it == e2.vars.end()) {
            return Status::Internal("codegen: unbound target key " + kv);
          }
          keys.push_back(it->second);
        }
        Line(out, StrFormat(
                      "%s.emplace_back(std::make_tuple(%s), "
                      "static_cast<%s>(%s));",
                      pend_name.c_str(), Join(keys, ", ").c_str(),
                      CppType(decl->value_type), value.c_str()));
        return Status::OK();
      };
      return EmitContribs(stmt.rhs, env, out, sink);
    };

    if (stmt.lhs_iterate.empty()) {
      DBT_RETURN_IF_ERROR(emit_body(base_env));
    } else {
      // LHS-driven iteration over the live keys of the target map, deduped
      // on the iterated positions when they do not cover the whole key.
      bool full = stmt.lhs_iterate.size() == stmt.target_keys.size();
      std::string lk = Fresh("lk");
      if (!full) {
        Line(out, StrFormat("std::set<std::string> seen_%s;", lk.c_str()));
      }
      Line(out, StrFormat("for (const auto& %s : %s_.entries()) {",
                          lk.c_str(), stmt.target.c_str()));
      ++indent_;
      Env env2 = base_env;
      std::string dedup_expr;
      for (size_t i = 0; i < stmt.lhs_iterate.size(); ++i) {
        size_t pos = stmt.lhs_iterate[i];
        std::string name = Fresh("v");
        Line(out, StrFormat("[[maybe_unused]] const auto %s = "
                            "std::get<%zu>(%s.first);",
                            name.c_str(), pos, lk.c_str()));
        env2.vars[stmt.target_keys[pos]] = name;
      }
      if (!full) {
        // Cheap textual dedup key (positions not covered by iteration are
        // event-bound and constant within this trigger execution).
        std::string parts;
        for (size_t pos : stmt.lhs_iterate) {
          parts += StrFormat(" + \"|\" + dbt_detail_to_string(std::get<%zu>(%s.first))",
                             pos, lk.c_str());
        }
        Line(out, StrFormat(
                      "if (!seen_%s.insert(std::string()%s).second) continue;",
                      lk.c_str(), parts.c_str()));
      }
      DBT_RETURN_IF_ERROR(emit_body(env2));
      --indent_;
      Line(out, "}");
    }
    --indent_;
    Line(out, "}");
    return Status::OK();
  }

  Status EmitTrigger(const tir::Trigger& trig, std::string* out);
  Status EmitVecTrigger(const tir::Trigger& trig, std::string* out);
  Status EmitMaps(std::string* out);

  // ---- group-vectorized batch path ----------------------------------------
  //
  // Layout-exactness vs. layout-drift. Run-batched commits into DOUBLE maps
  // go through Map::find_value: a live key takes `*slot += v` per row (the
  // exact add() sequence — doubles are never erased by add), an absent key
  // falls back to per-row upd_ calls, so insertion order and float addition
  // order are bit-identical to scalar replay. Batching INTEGER targets (one
  // add per distinct key run) and statement-major phases over maps with
  // several writers keep every per-key SUM exact but can change a store's
  // internal LAYOUT (which transient zero got erased, insertion order).
  // That drift is admissible only when provably unobservable: no statement
  // or re-evaluation anywhere in the program iterates a drifted store into
  // a float accumulation, and no init-on-access map can snapshot it.

  /// True when a lane predicate is evaluable by the selection kernels with
  /// C++ semantics identical to the scalar comparison.
  bool PredSupported(const tir::PredSpec& ps) const {
    const bool int_lane = ps.lane_type != Type::kDouble &&
                          ps.lane_type != Type::kString;
    switch (ps.kind) {
      case tir::PredSpec::Kind::kCmp:
        if (ps.values.size() != 1) return false;
        if (ps.lane_type == Type::kString) {
          return (ps.op == sql::BinOp::kEq || ps.op == sql::BinOp::kNeq) &&
                 ps.values[0].is_string();
        }
        if (ps.values[0].is_string()) return false;
        // An int lane against a double constant would truncate in the
        // typed kernel; the scalar path compares in double. Fall back.
        return !(int_lane && ps.values[0].is_double());
      case tir::PredSpec::Kind::kRange:
        return int_lane && ps.values.size() == 2 &&
               !ps.values[0].is_string() && !ps.values[0].is_double() &&
               !ps.values[1].is_string() && !ps.values[1].is_double();
      case tir::PredSpec::Kind::kIn: {
        if (ps.lane_type == Type::kString || ps.values.empty()) return false;
        for (const Value& v : ps.values) {
          if (v.is_string() || (int_lane && v.is_double())) return false;
        }
        return true;
      }
    }
    return false;
  }

  bool StmtPredsSupported(const tir::Stmt& s) const {
    if (s.preds.empty()) return false;
    for (const tir::PredSpec& ps : s.preds) {
      if (!PredSupported(ps)) return false;
    }
    return true;
  }

  /// One target-key lane of a run-batched statement.
  struct KeyLane {
    size_t lane = 0;  ///< trigger parameter index
    Type type = Type::kInt;
    const tir::PredSpec* pin = nullptr;  ///< equality guard fixing the lane
  };

  /// True when every top-level residual factor is loop-free under a full
  /// row binding: constants, terms, comparisons, and point atom accesses.
  /// The run-batched double path duplicates the row body across the
  /// live-slot / absent-key branches, so it requires a flat residual.
  bool FlatResidual(const tir::Trigger& t, const tir::Stmt& s) const {
    std::set<std::string> params;
    for (const tir::Param& pr : t.params) params.insert(pr.name);
    const ring::ExprPtr& rhs = s.preds.empty() ? s.stmt.rhs : s.vec_rhs;
    std::vector<ring::ExprPtr> factors =
        rhs->kind == ring::ExprKind::kProd ? rhs->children
                                           : std::vector<ring::ExprPtr>{rhs};
    for (const ring::ExprPtr& f : factors) {
      switch (f->kind) {
        case ring::ExprKind::kConst:
        case ring::ExprKind::kValTerm:
        case ring::ExprKind::kCmp:
          break;
        case ring::ExprKind::kRel:
        case ring::ExprKind::kMapRef: {
          for (const std::string& a : f->args) {
            if (!params.count(a)) return false;
          }
          const MapDecl* decl = f->kind == ring::ExprKind::kMapRef &&
                                        decls_.count(f->name)
                                    ? decls_.at(f->name)
                                    : nullptr;
          if (f->kind == ring::ExprKind::kMapRef &&
              (decl == nullptr || decl->needs_init)) {
            return false;  // init reads may scan base tables
          }
          break;
        }
        default:
          return false;  // lifts, sums, nested products: loop-bearing
      }
    }
    return true;
  }

  /// Run-batched commit eligibility: every extracted guard has a kernel,
  /// every target key is a plain event lane, string lanes are pinned by an
  /// equality guard, unpinned lanes are int64-sortable, and the required
  /// write-order relaxation is admissible for the target's value type.
  bool BatchableStmt(const tir::Trigger& t, const tir::Stmt& s,
                     std::vector<KeyLane>* lanes_out = nullptr) const {
    if (s.statically_zero || s.stmt.kind != Statement::Kind::kDelta ||
        !s.stmt.lhs_iterate.empty()) {
      return false;
    }
    const MapDecl* decl =
        decls_.count(s.stmt.target) ? decls_.at(s.stmt.target) : nullptr;
    if (decl == nullptr || decl->is_extreme || decl->needs_init) return false;
    const bool is_double = decl->value_type == Type::kDouble;
    if (!is_double && !relaxed_ok_) return false;
    if (!s.preds.empty() && !StmtPredsSupported(s)) return false;
    std::vector<KeyLane> lanes;
    for (const std::string& k : s.stmt.target_keys) {
      size_t li = SIZE_MAX;
      for (size_t i = 0; i < t.params.size(); ++i) {
        if (t.params[i].name == k) { li = i; break; }
      }
      if (li == SIZE_MAX) return false;
      KeyLane kl{li, t.params[li].type, nullptr};
      for (const tir::PredSpec& ps : s.preds) {
        if (ps.kind == tir::PredSpec::Kind::kCmp &&
            ps.op == sql::BinOp::kEq && ps.lane == li) {
          kl.pin = &ps;
          break;
        }
      }
      if (kl.pin == nullptr && kl.type == Type::kString) return false;
      if (kl.pin == nullptr && kl.type == Type::kDouble) return false;
      lanes.push_back(kl);
    }
    if (is_double && !FlatResidual(t, s)) return false;
    if (lanes_out) *lanes_out = std::move(lanes);
    return true;
  }

  /// Program-wide admissibility of layout drift (see block comment above):
  /// seed the set with integer targets the vectorized path would commit in
  /// merged/reordered order, then close over consumers that iterate a
  /// drifted store. A double-valued consumer, a re-evaluation scan, or any
  /// init-on-access map kills the relaxation globally.
  void ComputeRelaxedOk() {
    relaxed_ok_ = false;
    for (const MapDecl& m : p_.maps) {
      if (m.needs_init) return;
    }
    std::set<std::string> drifty;
    for (const tir::Trigger& t : tir_.triggers) {
      if (!t.vectorizable) continue;
      bool all_delta = true;
      for (const tir::Stmt& s : t.stmts) {
        if (s.stmt.kind != Statement::Kind::kDelta ||
            !s.stmt.lhs_iterate.empty()) {
          all_delta = false;
          break;
        }
      }
      if (!all_delta) continue;
      std::set<std::string> params;
      for (const tir::Param& pr : t.params) params.insert(pr.name);
      std::map<std::string, int> writers;
      for (const tir::Stmt& s : t.stmts) {
        if (!s.statically_zero) ++writers[s.stmt.target];
      }
      for (const tir::Stmt& s : t.stmts) {
        if (s.statically_zero) continue;
        const MapDecl* decl =
            decls_.count(s.stmt.target) ? decls_.at(s.stmt.target) : nullptr;
        if (decl == nullptr || decl->value_type == Type::kDouble) continue;
        bool keyed_by_params = true;
        for (const std::string& k : s.stmt.target_keys) {
          if (!params.count(k)) { keyed_by_params = false; break; }
        }
        if (keyed_by_params || writers[s.stmt.target] > 1) {
          drifty.insert(s.stmt.target);
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const tir::Trigger& t : tir_.triggers) {
        std::set<std::string> params;
        for (const tir::Param& pr : t.params) params.insert(pr.name);
        for (const tir::Stmt& s : t.stmts) {
          const Statement& st = s.stmt;
          std::set<std::string> iterated;
          if (st.kind == Statement::Kind::kReeval) {
            CollectIteratedStores(st.rhs, {}, &iterated);
            for (const std::string& m : iterated) {
              if (drifty.count(m)) return;  // float refresh scans the store
            }
            continue;
          }
          if (st.kind == Statement::Kind::kExtreme) {
            // Guards accumulate int64 indicators (exact under reorder);
            // values/keys are point reads.
            continue;
          }
          CollectIteratedStores(st.rhs, params, &iterated);
          if (!st.lhs_iterate.empty()) iterated.insert(st.target);
          bool reads_drifty = false;
          for (const std::string& m : iterated) {
            if (drifty.count(m)) { reads_drifty = true; break; }
          }
          if (!reads_drifty) continue;
          const MapDecl* decl =
              decls_.count(st.target) ? decls_.at(st.target) : nullptr;
          if (decl == nullptr || decl->value_type == Type::kDouble) return;
          if (drifty.insert(st.target).second) changed = true;
        }
      }
    }
    relaxed_ok_ = true;
  }

  /// The group-vectorized handler covers triggers whose statements are all
  /// plain delta statements (tir-vectorizable: phase 1 reads nothing the
  /// trigger writes), and pays off when some statement has extractable
  /// guards, is statically zero, or admits run-batched commits.
  bool VecEligible(const tir::Trigger& t) const {
    if (!t.vectorizable || t.stmts.empty()) return false;
    std::map<std::string, int> writers;
    for (const tir::Stmt& s : t.stmts) {
      if (s.stmt.kind != Statement::Kind::kDelta) return false;
      if (!s.stmt.lhs_iterate.empty()) return false;
      if (!s.statically_zero) ++writers[s.stmt.target];
    }
    bool worthwhile = false;
    for (const tir::Stmt& s : t.stmts) {
      const MapDecl* decl =
          decls_.count(s.stmt.target) ? decls_.at(s.stmt.target) : nullptr;
      if (decl == nullptr || decl->is_extreme) return false;
      // Several writers of one target FUSE into a single loop (the exact
      // per-event commit interleave, sound for any value type) when their
      // masks and guard sets agree; otherwise the statement-major merge
      // reorders per-key writes and needs the integer drift relaxation.
      if (writers[s.stmt.target] > 1) {
        bool fusable = true;
        const tir::Stmt* first = nullptr;
        for (const tir::Stmt& w : t.stmts) {
          if (w.statically_zero || w.stmt.target != s.stmt.target) continue;
          if (first == nullptr) { first = &w; continue; }
          if (w.when != first->when || !SamePredSet(first->preds, w.preds)) {
            fusable = false;
            break;
          }
        }
        if (!fusable &&
            (decl->value_type == Type::kDouble || !relaxed_ok_)) {
          return false;
        }
      }
      if (s.statically_zero || StmtPredsSupported(s) || BatchableStmt(t, s)) {
        worthwhile = true;
      }
    }
    return worthwhile;
  }
  Status EmitInitFunctions(std::string* out);
  Status EmitViews(std::string* out);
  Status EmitViewShim(std::string* out);
  Status EmitBatchHandlers(std::string* out);
  Status EmitDispatcher(std::string* out);

  /// Key types of a storage member ("mN_" aggregate map or "rel_R_" base
  /// multiset) plus its value C++ type.
  struct StoreInfo {
    std::vector<Type> key_types;
    std::string value_type;
  };
  Result<StoreInfo> StoreOf(const ExprPtr& atom) const {
    if (atom->kind == ring::ExprKind::kRel) {
      const Schema* schema = RelSchema(atom->name);
      if (schema == nullptr) {
        return Status::Internal("codegen: unknown relation " + atom->name);
      }
      StoreInfo info;
      for (size_t i = 0; i < schema->num_columns(); ++i) {
        info.key_types.push_back(schema->column_type(i));
      }
      info.value_type = "int64_t";
      return info;
    }
    const MapDecl* decl =
        decls_.count(atom->name) ? decls_.at(atom->name) : nullptr;
    if (decl == nullptr) {
      return Status::Internal("codegen: unknown map " + atom->name);
    }
    return StoreInfo{decl->key_types, CppType(decl->value_type)};
  }

  /// Secondary slice indexes requested by partially-bound atom accesses.
  struct IndexReq {
    std::string store;               ///< member name, e.g. "m8_" / "rel_R_"
    std::vector<size_t> positions;   ///< bound key positions
    std::vector<Type> key_types;     ///< full key types of the store
  };
  /// Returns the index member name, registering the request if new.
  std::string RequestIndex(const std::string& store,
                           const std::vector<size_t>& positions,
                           const std::vector<Type>& key_types) {
    for (size_t i = 0; i < index_reqs_.size(); ++i) {
      if (index_reqs_[i].store == store &&
          index_reqs_[i].positions == positions) {
        return StrFormat("idx%zu_", i);
      }
    }
    index_reqs_.push_back(IndexReq{store, positions, key_types});
    return StrFormat("idx%zu_", index_reqs_.size() - 1);
  }

  // ---- shard plan ----------------------------------------------------------
  //
  // A program is shardable when a partition attribute can be chosen for
  // every streamed relation such that each trigger's entire execution —
  // every map read, every map write, the base-table update — touches only
  // keys that carry the triggering event's attribute value. Events can then
  // be hash-partitioned on that value into dbt::kNumShards fixed logical
  // shards and replayed concurrently, each shard owning its own partition
  // of every store (dbt::Sharded) with no locks and no shared allocator.
  //
  // The analysis is conservative: delta statements only (no hybrid
  // re-evaluation, no MIN/MAX multisets, no LHS iteration), no
  // init-on-access maps, and every map/relation atom fully bound by event
  // parameters (point accesses only — a slice or scan would cross shards).

  /// One point access to a store: the variable name routed at each key
  /// position ("" when the key term is not a plain event parameter).
  struct ShardAccess {
    std::string store;              ///< member name ("q0_", "rel_BIDS_")
    std::vector<std::string> args;  ///< per key position
    std::string relation;           ///< triggering relation
  };

  struct ShardPlanInfo {
    bool ok = false;
    std::map<std::string, std::string> rel_var;  ///< relation -> param name
    std::map<std::string, size_t> rel_pos;       ///< relation -> param index
    std::map<std::string, size_t> route;         ///< store member -> key pos
  };

  size_t RouteOf(const std::string& store) const {
    auto it = plan_.route.find(store);
    return it == plan_.route.end() ? 0 : it->second;
  }

  bool CollectTermAccesses(const TermPtr& t,
                           const std::set<std::string>& params,
                           const std::string& relation,
                           std::vector<ShardAccess>* out) {
    switch (t->kind) {
      case Term::Kind::kConst:
      case Term::Kind::kVar:
        return true;
      case Term::Kind::kMapRead: {
        const MapDecl* decl =
            decls_.count(t->map_name) ? decls_.at(t->map_name) : nullptr;
        if (decl == nullptr || decl->needs_init || decl->is_extreme) {
          return false;
        }
        ShardAccess access{decl->name + "_", {}, relation};
        for (const TermPtr& a : t->args) {
          if (!CollectTermAccesses(a, params, relation, out)) return false;
          access.args.push_back(
              a->kind == Term::Kind::kVar && params.count(a->var) ? a->var
                                                                  : "");
        }
        out->push_back(std::move(access));
        return true;
      }
      default:
        return (t->lhs == nullptr ||
                CollectTermAccesses(t->lhs, params, relation, out)) &&
               (t->rhs == nullptr ||
                CollectTermAccesses(t->rhs, params, relation, out));
    }
  }

  bool CollectExprAccesses(const ExprPtr& e,
                           const std::set<std::string>& params,
                           const std::string& relation,
                           std::vector<ShardAccess>* out) {
    switch (e->kind) {
      case ring::ExprKind::kConst:
        return true;
      case ring::ExprKind::kValTerm:
      case ring::ExprKind::kLift:
        return CollectTermAccesses(e->term, params, relation, out);
      case ring::ExprKind::kCmp:
        return CollectTermAccesses(e->cmp_lhs, params, relation, out) &&
               CollectTermAccesses(e->cmp_rhs, params, relation, out);
      case ring::ExprKind::kRel:
      case ring::ExprKind::kMapRef: {
        std::string store;
        if (e->kind == ring::ExprKind::kRel) {
          store = RelMapName(e->name);
        } else {
          const MapDecl* decl =
              decls_.count(e->name) ? decls_.at(e->name) : nullptr;
          if (decl == nullptr || decl->needs_init || decl->is_extreme) {
            return false;
          }
          store = decl->name + "_";
        }
        ShardAccess access{store, {}, relation};
        for (const std::string& a : e->args) {
          if (!params.count(a)) return false;  // unbound arg: a slice/scan
          access.args.push_back(a);
        }
        out->push_back(std::move(access));
        return true;
      }
      default:
        for (const ExprPtr& c : e->children) {
          if (!CollectExprAccesses(c, params, relation, out)) return false;
        }
        return true;
    }
  }

  void AnalyzeShardPlan() {
    if (p_.triggers.empty()) return;
    for (const MapDecl& m : p_.maps) {
      if (m.needs_init) return;  // initializers scan base tables on read
    }
    std::vector<ShardAccess> accesses;
    for (const Trigger& t : p_.triggers) {
      std::set<std::string> params(t.params.begin(), t.params.end());
      // The base-table update: full event tuple, all positions are params.
      accesses.push_back(
          ShardAccess{RelMapName(t.relation), t.params, t.relation});
      for (const Statement& st : t.statements) {
        if (st.kind != Statement::Kind::kDelta || !st.lhs_iterate.empty()) {
          return;
        }
        for (const std::string& k : st.target_keys) {
          if (!params.count(k)) return;
        }
        accesses.push_back(
            ShardAccess{st.target + "_", st.target_keys, t.relation});
        if (!CollectExprAccesses(st.rhs, params, t.relation, &accesses)) {
          return;
        }
      }
    }

    // Candidate partition params per relation: those present in every
    // access made by that relation's triggers.
    std::vector<std::string> rels(rels_.begin(), rels_.end());
    std::map<std::string, std::vector<std::string>> cands;
    for (const std::string& rel : rels) {
      const Trigger* any = nullptr;
      for (const Trigger& t : p_.triggers) {
        if (t.relation == rel) any = &t;
      }
      for (const std::string& pv : any->params) {
        bool in_all = true;
        for (const ShardAccess& a : accesses) {
          if (a.relation != rel) continue;
          if (std::find(a.args.begin(), a.args.end(), pv) == a.args.end()) {
            in_all = false;
            break;
          }
        }
        if (in_all) cands[rel].push_back(pv);
      }
      if (cands[rel].empty()) return;
    }

    // Pick one partition param per relation such that every store admits a
    // single routed key position consistent across all of its accesses.
    std::map<std::string, std::string> chosen;
    std::map<std::string, size_t> route;
    std::function<bool(size_t)> assign = [&](size_t i) -> bool {
      if (i == rels.size()) {
        route.clear();
        std::map<std::string, std::vector<const ShardAccess*>> by_store;
        for (const ShardAccess& a : accesses) {
          by_store[a.store].push_back(&a);
        }
        for (const auto& [store, list] : by_store) {
          const size_t arity = list.front()->args.size();
          bool found = false;
          for (size_t j = 0; j < arity && !found; ++j) {
            bool all_match = true;
            for (const ShardAccess* a : list) {
              if (j >= a->args.size() || a->args[j] != chosen[a->relation]) {
                all_match = false;
                break;
              }
            }
            if (all_match) {
              route[store] = j;
              found = true;
            }
          }
          if (!found) return false;
        }
        return true;
      }
      for (const std::string& v : cands[rels[i]]) {
        chosen[rels[i]] = v;
        if (assign(i + 1)) return true;
      }
      return false;
    };
    if (!assign(0)) return;

    plan_.ok = true;
    plan_.rel_var = chosen;
    plan_.route = std::move(route);
    for (const std::string& rel : rels) {
      const Trigger* any = nullptr;
      for (const Trigger& t : p_.triggers) {
        if (t.relation == rel) any = &t;
      }
      for (size_t i = 0; i < any->params.size(); ++i) {
        if (any->params[i] == chosen[rel]) plan_.rel_pos[rel] = i;
      }
    }
  }

  const Program& p_;
  GenOptions opts_;
  /// Typed trigger IR lowered once from p_: sign-unified triggers, typed
  /// parameters, shared factor ordering. All trigger emission reads it.
  tir::Module tir_;
  std::map<std::string, const MapDecl*> decls_;
  std::set<std::string> rels_;
  /// Relations whose base multiset some expression reads back; only these
  /// get a rel_R_ member and per-event maintenance (see ctor).
  std::set<std::string> live_rels_;
  ShardPlanInfo plan_;
  /// Program-wide verdict: may integer map layout drift (run-batched adds,
  /// statement-major multi-writer merges)? See ComputeRelaxedOk.
  bool relaxed_ok_ = false;
  /// Any trigger got a vec_<R> group handler (emit counters + overrides).
  bool any_vec_ = false;
  std::vector<IndexReq> index_reqs_;
  int temp_ = 0;
  int indent_ = 1;
};

Status Generator::EmitMaps(std::string* out) {
  if (plan_.ok) {
    Line(out, "// --- shard plan: hash-partitioned state, "
              "dbt::kNumShards logical shards ---");
    for (const auto& [rel, var] : plan_.rel_var) {
      Line(out, StrFormat("//   %s events partition on %s (param %zu)",
                          rel.c_str(), var.c_str(), plan_.rel_pos.at(rel)));
    }
  }
  Line(out, "// --- base relation multiset maps (database snapshot) ---");
  for (const std::string& rel : rels_) {
    if (live_rels_.count(rel) == 0) {
      Line(out, StrFormat("// rel_%s_ elided: no statement, initializer, or "
                          "view reads it back",
                          rel.c_str()));
      continue;
    }
    const Schema* schema = RelSchema(rel);
    std::vector<Type> kt;
    for (size_t i = 0; i < schema->num_columns(); ++i) {
      kt.push_back(schema->column_type(i));
    }
    if (plan_.ok) {
      Line(out, StrFormat("dbt::Sharded<dbt::Map<%s, int64_t>, %zu> %s;",
                          KeyType(kt).c_str(),
                          RouteOf(RelMapName(rel)), RelMapName(rel).c_str()));
    } else {
      Line(out, StrFormat("dbt::Map<%s, int64_t> %s;",
                          KeyType(kt).c_str(), RelMapName(rel).c_str()));
    }
  }
  Line(out, "// --- aggregate maps ---");
  for (const MapDecl& m : p_.maps) {
    if (m.is_extreme) {
      Line(out, StrFormat("dbt::ExtremeMap<%s, %s> %s_;  // %s",
                          KeyType(m.key_types).c_str(),
                          CppType(m.value_type), m.name.c_str(),
                          sql::AggKindName(m.extreme_kind)));
    } else if (plan_.ok) {
      Line(out, StrFormat("dbt::Sharded<dbt::Map<%s, %s>, %zu> %s_;",
                          KeyType(m.key_types).c_str(),
                          CppType(m.value_type), RouteOf(m.name + "_"),
                          m.name.c_str()));
    } else {
      Line(out, StrFormat("dbt::Map<%s, %s> %s_;",
                          KeyType(m.key_types).c_str(),
                          CppType(m.value_type), m.name.c_str()));
    }
  }
  return Status::OK();
}

Status Generator::EmitInitFunctions(std::string* out) {
  for (const MapDecl& m : p_.maps) {
    if (m.is_extreme || !m.needs_init || m.definition == nullptr) continue;
    // V <name>_init(k0, ...) : evaluate the definition over base tables.
    std::vector<std::string> params;
    Env env;
    for (size_t i = 0; i < m.key_names.size(); ++i) {
      params.push_back(StrFormat("%s k%zu", CppType(m.key_types[i]), i));
      env.vars[m.key_names[i]] = StrFormat("k%zu", i);
    }
    Line(out, StrFormat("%s %s_init(%s) {", CppType(m.value_type),
                        m.name.c_str(), Join(params, ", ").c_str()));
    ++indent_;
    Line(out, StrFormat("%s acc{};", CppType(m.value_type)));
    Sink sink = [&](const Env& /*e2*/, const std::string& value) -> Status {
      Line(out, StrFormat("acc += static_cast<%s>(%s);",
                          CppType(m.value_type), value.c_str()));
      return Status::OK();
    };
    assert(m.definition->kind == ring::ExprKind::kAggSum);
    DBT_RETURN_IF_ERROR(
        EmitContribs(m.definition->children[0], env, out, sink));
    Line(out, "return acc;");
    --indent_;
    Line(out, "}");

    // Read helper with optional caching.
    Line(out, StrFormat("%s %s_read(const %s& k, bool store) {",
                        CppType(m.value_type), m.name.c_str(),
                        KeyType(m.key_types).c_str()));
    ++indent_;
    Line(out, StrFormat("if (%s_.contains(k)) return %s_.get(k);",
                        m.name.c_str(), m.name.c_str()));
    std::vector<std::string> gets;
    for (size_t i = 0; i < m.key_names.size(); ++i) {
      gets.push_back(StrFormat("std::get<%zu>(k)", i));
    }
    Line(out, StrFormat("const %s v = %s_init(%s);", CppType(m.value_type),
                        m.name.c_str(), Join(gets, ", ").c_str()));
    Line(out, StrFormat("if (store) st_%s_(k, v);", m.name.c_str()));
    Line(out, "return v;");
    --indent_;
    Line(out, "}");
  }
  return Status::OK();
}

Status Generator::EmitTrigger(const tir::Trigger& trig, std::string* out) {
  std::vector<std::string> params;
  Env env;
  // [[maybe_unused]]: with the base-table update elided (see live_rels_),
  // a column no statement references has no remaining use.
  for (const tir::Param& p : trig.params) {
    std::string arg = "arg_" + p.name;
    params.push_back(StrFormat("[[maybe_unused]] %s %s", CppType(p.type),
                               arg.c_str()));
    env.vars[p.name] = arg;
  }
  params.push_back("const int64_t sign");
  env.vars[tir::kSignVar] = "sign";
  Line(out, StrFormat("void on_%s(%s) {", trig.relation.c_str(),
                      Join(params, ", ").c_str()));
  ++indent_;

  // Statements that failed sign unification carry a one-sided mask; their
  // emission is wrapped in a sign guard. Unified statements run for both
  // polarities with kSignVar bound to the `sign` argument.
  auto mask_open = [&](const tir::Stmt& s) -> bool {
    if (s.when == tir::Stmt::When::kBoth) return false;
    Line(out, s.when == tir::Stmt::When::kInsertOnly ? "if (sign > 0) {"
                                                     : "if (sign < 0) {");
    ++indent_;
    return true;
  };
  auto mask_close = [&](bool opened) {
    if (!opened) return;
    --indent_;
    Line(out, "}");
  };

  // Phase 1: evaluate delta statements against the pre-state into pendings.
  // pend_names is aligned with trig.stmts (empty for non-delta kinds).
  std::vector<std::string> pend_names(trig.stmts.size());
  for (size_t si = 0; si < trig.stmts.size(); ++si) {
    const tir::Stmt& s = trig.stmts[si];
    if (s.stmt.kind != Statement::Kind::kDelta) continue;
    if (s.statically_zero) {
      Line(out, "// [statically zero] " + s.rendering);
      continue;
    }
    const MapDecl* decl = decls_.at(s.stmt.target);
    std::string pend = StrFormat("pend%zu", si);
    pend_names[si] = pend;
    Line(out, StrFormat("std::vector<std::pair<%s, %s>> %s;",
                        KeyType(decl->key_types).c_str(),
                        CppType(decl->value_type), pend.c_str()));
    bool opened = mask_open(s);
    DBT_RETURN_IF_ERROR(EmitDeltaStatement(s.stmt, env, pend, out));
    mask_close(opened);
  }

  // Phase 2: base table + pending applications.
  if (live_rels_.count(trig.relation) != 0) {
    std::vector<std::string> args;
    for (const tir::Param& p : trig.params) args.push_back("arg_" + p.name);
    Line(out, StrFormat("upd_%s(std::make_tuple(%s), sign);",
                        RelMapName(trig.relation).c_str(),
                        Join(args, ", ").c_str()));
  }
  for (size_t si = 0; si < trig.stmts.size(); ++si) {
    const tir::Stmt& s = trig.stmts[si];
    if (s.stmt.kind != Statement::Kind::kDelta) continue;
    if (pend_names[si].empty()) continue;  // statically zero
    Line(out, StrFormat("for (const auto& kv : %s) upd_%s_(kv.first, "
                        "kv.second);",
                        pend_names[si].c_str(), s.stmt.target.c_str()));
  }

  // Phase 2b: extreme statements.
  for (const tir::Stmt& s : trig.stmts) {
    const Statement& stmt = s.stmt;
    if (stmt.kind != Statement::Kind::kExtreme) continue;
    Line(out, "{  // " + stmt.ToString());
    ++indent_;
    bool opened = mask_open(s);
    std::string guard_close;
    if (stmt.extreme_guard != nullptr) {
      std::string acc = Fresh("g");
      Line(out, StrFormat("int64_t %s = 0;", acc.c_str()));
      Sink sink = [&](const Env& /*e2*/, const std::string& value) -> Status {
        Line(out, StrFormat("%s += (%s);", acc.c_str(), value.c_str()));
        return Status::OK();
      };
      DBT_RETURN_IF_ERROR(EmitContribs(stmt.extreme_guard, env, out, sink));
      Line(out, StrFormat("if (%s != 0) {", acc.c_str()));
      ++indent_;
      guard_close = "}";
    }
    std::vector<std::string> keys;
    for (const std::string& kv : stmt.target_keys) {
      auto it = env.vars.find(kv);
      if (it == env.vars.end()) {
        return Status::Internal("codegen: unbound extreme key " + kv);
      }
      keys.push_back(it->second);
    }
    DBT_ASSIGN_OR_RETURN(std::string value, TermCpp(stmt.extreme_value, env));
    if (s.extreme_runtime_sign) {
      // Insert adds to / delete removes from the min/max multiset: the
      // multiset op direction is the event sign itself.
      Line(out, StrFormat("%s_.update(std::make_tuple(%s), %s, sign);",
                          stmt.target.c_str(), Join(keys, ", ").c_str(),
                          value.c_str()));
    } else {
      Line(out, StrFormat("%s_.%s(std::make_tuple(%s), %s);",
                          stmt.target.c_str(),
                          stmt.extreme_sign > 0 ? "add" : "remove",
                          Join(keys, ", ").c_str(), value.c_str()));
    }
    if (!guard_close.empty()) {
      --indent_;
      Line(out, guard_close);
    }
    mask_close(opened);
    --indent_;
    Line(out, "}");
  }

  // Phase 3: hybrid re-evaluation statements (post-state; no event params).
  for (const tir::Stmt& s : trig.stmts) {
    const Statement& stmt = s.stmt;
    if (stmt.kind != Statement::Kind::kReeval) continue;
    const MapDecl* decl = decls_.at(stmt.target);
    Line(out, "{  // " + stmt.ToString());
    ++indent_;
    bool opened = mask_open(s);
    std::string acc = Fresh("acc");
    Line(out, StrFormat("%s %s{};", CppType(decl->value_type), acc.c_str()));
    Env renv;  // empty: reeval depends only on state
    renv.store_flag = "true";
    Sink sink = [&](const Env& /*e2*/, const std::string& value) -> Status {
      Line(out, StrFormat("%s += static_cast<%s>(%s);", acc.c_str(),
                          CppType(decl->value_type), value.c_str()));
      return Status::OK();
    };
    assert(stmt.rhs->kind == ring::ExprKind::kAggSum &&
           stmt.rhs->group_vars.empty());
    DBT_RETURN_IF_ERROR(EmitContribs(stmt.rhs->children[0], renv, out, sink));
    Line(out, StrFormat("%s_.clear();", stmt.target.c_str()));
    Line(out, StrFormat("%s_.set(std::tuple<>{}, %s);", stmt.target.c_str(),
                        acc.c_str()));
    mask_close(opened);
    --indent_;
    Line(out, "}");
  }

  --indent_;
  Line(out, "}");
  return Status::OK();
}

/// Group-vectorized handler: one call per (relation, op) group (or per
/// shard sub-range under a shard plan) replaces the per-row trigger calls.
/// Extracted guards run once as selection kernels over whole column lanes;
/// each statement then iterates only its class's survivors; statements
/// whose target keys are event lanes sort survivors into key runs and
/// commit each run with a single probe. Contribution values, their order,
/// and float addition order are identical to per-row replay (see the
/// layout-exactness comment at the analysis layer).
Status Generator::EmitVecTrigger(const tir::Trigger& t, std::string* out) {
  const std::string& rel = t.relation;

  // Row binding identical to the scalar handler's, so factor ordering (and
  // with it contribution order) matches on_<R> exactly.
  Env row_env;
  for (size_t i = 0; i < t.params.size(); ++i) {
    row_env.vars[t.params[i].name] = StrFormat("c%zu[i]", i);
  }
  row_env.vars[tir::kSignVar] = "sign";

  struct StmtPlan {
    bool skip = false;      ///< statically zero
    size_t cls = SIZE_MAX;  ///< selection class (SIZE_MAX: iterate base)
    bool batched = false;
    std::vector<KeyLane> lanes;
    std::vector<const tir::PredSpec*> canon;  ///< canonical guard order
  };
  std::vector<StmtPlan> plans(t.stmts.size());

  // Canonical guard order: shared (popular) guards sort first so classes
  // overlap on a common prefix evaluated once. Reordering selection passes
  // is exact — each is a pure 0/1 mask.
  auto pred_tiebreak = [](const tir::PredSpec& ps) {
    std::string k = StrFormat("%03zu|%d|%d", ps.lane,
                              static_cast<int>(ps.kind),
                              static_cast<int>(ps.op));
    for (const Value& v : ps.values) k += "|" + ValueLiteral(v);
    return k;
  };
  auto popularity = [&](const tir::PredSpec& ps) {
    int n = 0;
    for (const tir::Stmt& s : t.stmts) {
      if (s.statically_zero || !StmtPredsSupported(s)) continue;
      for (const tir::PredSpec& q : s.preds) {
        if (tir::PredSpecEquals(ps, q)) { ++n; break; }
      }
    }
    return n;
  };

  std::vector<std::vector<const tir::PredSpec*>> classes;
  for (size_t si = 0; si < t.stmts.size(); ++si) {
    const tir::Stmt& s = t.stmts[si];
    StmtPlan& pl = plans[si];
    if (s.statically_zero) { pl.skip = true; continue; }
    pl.batched = BatchableStmt(t, s, &pl.lanes);
    if (!StmtPredsSupported(s)) continue;  // no guards (or no kernel): base
    for (const tir::PredSpec& q : s.preds) pl.canon.push_back(&q);
    std::stable_sort(pl.canon.begin(), pl.canon.end(),
                     [&](const tir::PredSpec* a, const tir::PredSpec* b) {
                       const int pa = popularity(*a), pb = popularity(*b);
                       if (pa != pb) return pa > pb;
                       return pred_tiebreak(*a) < pred_tiebreak(*b);
                     });
    for (size_t ci = 0; ci < classes.size() && pl.cls == SIZE_MAX; ++ci) {
      if (classes[ci].size() != pl.canon.size()) continue;
      bool same = true;
      for (size_t j = 0; j < pl.canon.size() && same; ++j) {
        same = tir::PredSpecEquals(*classes[ci][j], *pl.canon[j]);
      }
      if (same) pl.cls = ci;
    }
    if (pl.cls == SIZE_MAX) {
      classes.push_back(pl.canon);
      pl.cls = classes.size() - 1;
    }
  }

  // Fusion: all writers of one target sharing a mask and selection class
  // collapse into one loop whose per-row body applies the statements in
  // order — the exact per-event commit interleave, sound for any value
  // type with no layout relaxation.
  std::vector<size_t> fuse_leader(t.stmts.size(), SIZE_MAX);
  std::map<size_t, std::vector<size_t>> fuse_groups;  // leader -> members
  {
    std::map<std::string, std::vector<size_t>> by_target;
    for (size_t si = 0; si < t.stmts.size(); ++si) {
      if (!plans[si].skip) {
        by_target[t.stmts[si].stmt.target].push_back(si);
      }
    }
    for (const auto& [tgt, idxs] : by_target) {
      if (idxs.size() < 2) continue;
      bool fusable = true;
      for (size_t k = 1; k < idxs.size() && fusable; ++k) {
        fusable = t.stmts[idxs[k]].when == t.stmts[idxs[0]].when &&
                  plans[idxs[k]].cls == plans[idxs[0]].cls;
      }
      if (!fusable) continue;
      for (size_t si : idxs) fuse_leader[si] = idxs[0];
      fuse_groups[idxs[0]] = idxs;
    }
  }
  auto lanes_equal = [](const std::vector<KeyLane>& a,
                        const std::vector<KeyLane>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].lane != b[i].lane) return false;
      if ((a[i].pin == nullptr) != (b[i].pin == nullptr)) return false;
      if (a[i].pin != nullptr &&
          !tir::PredSpecEquals(*a[i].pin, *b[i].pin)) {
        return false;
      }
    }
    return true;
  };

  // Longest guard prefix common to every class.
  size_t prefix_len = 0;
  if (classes.size() >= 2) {
    size_t min_len = classes[0].size();
    for (const auto& c : classes) min_len = std::min(min_len, c.size());
    while (prefix_len < min_len) {
      bool same = true;
      for (size_t ci = 1; ci < classes.size() && same; ++ci) {
        same = tir::PredSpecEquals(*classes[0][prefix_len],
                                   *classes[ci][prefix_len]);
      }
      if (!same) break;
      ++prefix_len;
    }
  }

  // [[maybe_unused]]: a lane may go unreferenced once the base-table
  // update is elided and no guard or RHS touches it.
  std::string cparams;
  for (size_t i = 0; i < t.params.size(); ++i) {
    cparams += StrFormat("[[maybe_unused]] const %s* c%zu, ",
                         ColElem(t.params[i].type), i);
  }
  Line(out, StrFormat("void vec_%s(%sconst uint32_t* base, "
                      "const uint32_t base_n, const int64_t sign) {",
                      rel.c_str(), cparams.c_str()));
  ++indent_;
  Line(out, "uint64_t vec_rows = 0;");
  Line(out, "uint64_t vec_runs = 0;");

  // --- selection prologue (guard extraction -> kernels) ---
  Line(out, "// --- selection prologue (guard extraction -> kernels) ---");
  auto emit_pass = [&](const tir::PredSpec& ps, const std::string& in,
                       const std::string& inn, const std::string& sel,
                       const std::string& cnt_lhs) {
    const std::string lane = StrFormat("c%zu", ps.lane);
    const char* ty = ps.lane_type == Type::kDouble ? "double" : "int64_t";
    switch (ps.kind) {
      case tir::PredSpec::Kind::kCmp:
        if (ps.lane_type == Type::kString) {
          Line(out, StrFormat("%s = dbt::SelStr%s(%s, %s, %s, %s, %s);",
                              cnt_lhs.c_str(),
                              ps.op == sql::BinOp::kEq ? "Eq" : "Ne",
                              lane.c_str(),
                              EscapeString(ps.values[0].AsString()).c_str(),
                              in.c_str(), inn.c_str(), sel.c_str()));
        } else {
          Line(out, StrFormat("%s = dbt::SelCmp<%s>(%s, %s, %s, %s, %s, %s);",
                              cnt_lhs.c_str(), ty, lane.c_str(),
                              SelOpName(ps.op),
                              ValueLiteral(ps.values[0]).c_str(), in.c_str(),
                              inn.c_str(), sel.c_str()));
        }
        break;
      case tir::PredSpec::Kind::kRange:
        Line(out, StrFormat("%s = dbt::SelRange<int64_t>(%s, %s, %s, %s, %s, "
                            "%s);",
                            cnt_lhs.c_str(), lane.c_str(),
                            ValueLiteral(ps.values[0]).c_str(),
                            ValueLiteral(ps.values[1]).c_str(), in.c_str(),
                            inn.c_str(), sel.c_str()));
        break;
      case tir::PredSpec::Kind::kIn: {
        std::string arr = Fresh("inl");
        std::vector<std::string> lits;
        for (const Value& v : ps.values) lits.push_back(ValueLiteral(v));
        Line(out, StrFormat("const %s %s[] = {%s};", ty, arr.c_str(),
                            Join(lits, ", ").c_str()));
        Line(out, StrFormat("%s = dbt::SelIn<%s>(%s, %s, %zu, %s, %s, %s);",
                            cnt_lhs.c_str(), ty, lane.c_str(), arr.c_str(),
                            ps.values.size(), in.c_str(), inn.c_str(),
                            sel.c_str()));
        break;
      }
    }
  };
  if (prefix_len > 0) {
    Line(out, "// shared guard prefix");
    Line(out, "dbt::SelBuf sbp;");
    Line(out, "uint32_t* selp = sbp.data(base_n);");
    for (size_t j = 0; j < prefix_len; ++j) {
      emit_pass(*classes[0][j], j == 0 ? "base" : "selp",
                j == 0 ? "base_n" : "cntp", "selp",
                j == 0 ? "uint32_t cntp" : "cntp");
    }
  }
  for (size_t ci = 0; ci < classes.size(); ++ci) {
    const std::string sel = StrFormat("sel%zu", ci);
    const std::string cnt = StrFormat("cnt%zu", ci);
    if (prefix_len > 0 && classes[ci].size() == prefix_len) {
      Line(out, StrFormat("uint32_t* %s = selp;", sel.c_str()));
      Line(out, StrFormat("const uint32_t %s = cntp;", cnt.c_str()));
    } else {
      Line(out, StrFormat("dbt::SelBuf sb%zu;", ci));
      Line(out, StrFormat("uint32_t* %s = sb%zu.data(base_n);", sel.c_str(),
                          ci));
      for (size_t j = prefix_len; j < classes[ci].size(); ++j) {
        const bool first = j == prefix_len;
        emit_pass(*classes[ci][j],
                  first ? (prefix_len > 0 ? "selp" : "base") : sel,
                  first ? (prefix_len > 0 ? "cntp" : "base_n") : cnt, sel,
                  first ? "uint32_t " + cnt : cnt);
      }
    }
    Line(out, StrFormat("vec_rows += %s;", cnt.c_str()));
  }

  // --- statement phases (statement-major, selection-vector iteration) ---
  Line(out, "// --- statement phases (statement-major, "
            "selection-vector iteration) ---");
  // Base-table update first: no delta statement reads the triggering
  // relation (tir vectorizable covers init cascades too), so folding the
  // relation update ahead of all statements matches per-row phase order.
  if (live_rels_.count(rel) != 0) {
    std::vector<std::string> args;
    for (size_t i = 0; i < t.params.size(); ++i) {
      args.push_back(StrFormat("c%zu[i]", i));
    }
    Line(out, "for (uint32_t ii = 0; ii < base_n; ++ii) {");
    ++indent_;
    Line(out, "const uint32_t i = base != nullptr ? base[ii] : ii;");
    Line(out, StrFormat("upd_%s(std::make_tuple(%s), sign);",
                        RelMapName(rel).c_str(), Join(args, ", ").c_str()));
    --indent_;
    Line(out, "}");
  }

  for (size_t si = 0; si < t.stmts.size(); ++si) {
    const tir::Stmt& s = t.stmts[si];
    const StmtPlan& pl = plans[si];
    if (pl.skip) {
      Line(out, "// [statically zero] " + s.rendering);
      continue;
    }
    if (fuse_leader[si] != SIZE_MAX && fuse_leader[si] != si) {
      Line(out, "// [fused above] " + s.rendering);
      continue;
    }
    std::vector<size_t> members{si};
    if (fuse_groups.count(si)) members = fuse_groups.at(si);
    // One fused per-row body: each member statement's contributions in
    // statement order — the scalar per-event apply sequence.
    auto emit_bodies =
        [&](const std::function<Sink(const tir::Stmt&)>& make_sink)
        -> Status {
      for (size_t mi : members) {
        const tir::Stmt& ms = t.stmts[mi];
        const ring::ExprPtr mrhs =
            plans[mi].cls != SIZE_MAX ? ms.vec_rhs : ms.stmt.rhs;
        DBT_RETURN_IF_ERROR(
            EmitContribs(mrhs, row_env, out, make_sink(ms)));
      }
      return Status::OK();
    };
    bool batched = pl.batched;
    for (size_t mi : members) {
      batched = batched && plans[mi].batched &&
                lanes_equal(pl.lanes, plans[mi].lanes);
    }
    const MapDecl* decl = decls_.at(s.stmt.target);
    const bool base_sel = pl.cls == SIZE_MAX;
    const std::string sel =
        base_sel ? "base" : StrFormat("sel%zu", pl.cls);
    const std::string cnt =
        base_sel ? "base_n" : StrFormat("cnt%zu", pl.cls);
    // [[maybe_unused]]: a fully run-key-bound RHS reads no per-row lane.
    auto row_at = [&](const std::string& idx) {
      return base_sel ? StrFormat("[[maybe_unused]] const uint32_t i = "
                                  "base != nullptr ? base[%s] : %s;",
                                  idx.c_str(), idx.c_str())
                      : StrFormat("[[maybe_unused]] const uint32_t i = "
                                  "%s[%s];",
                                  sel.c_str(), idx.c_str());
    };

    Line(out, "{  // " + s.rendering);
    ++indent_;
    bool opened = false;
    if (s.when != tir::Stmt::When::kBoth) {
      Line(out, s.when == tir::Stmt::When::kInsertOnly ? "if (sign > 0) {"
                                                       : "if (sign < 0) {");
      ++indent_;
      opened = true;
    }

    if (!batched) {
      Line(out, StrFormat("for (uint32_t ii = 0; ii < %s; ++ii) {",
                          cnt.c_str()));
      ++indent_;
      Line(out, row_at("ii"));
      auto make_sink = [&](const tir::Stmt& mref) -> Sink {
        const tir::Stmt* ms = &mref;
        return [&, ms](const Env& e2, const std::string& value) -> Status {
          std::vector<std::string> keys;
          for (const std::string& kv : ms->stmt.target_keys) {
            auto it = e2.vars.find(kv);
            if (it == e2.vars.end()) {
              return Status::Internal("codegen: unbound target key " + kv);
            }
            keys.push_back(it->second);
          }
          Line(out, StrFormat("upd_%s_(std::make_tuple(%s), "
                              "static_cast<%s>(%s));",
                              ms->stmt.target.c_str(),
                              Join(keys, ", ").c_str(),
                              CppType(decl->value_type), value.c_str()));
          return Status::OK();
        };
      };
      DBT_RETURN_IF_ERROR(emit_bodies(make_sink));
      --indent_;
      Line(out, "}");
    } else {
      std::vector<KeyLane> unpinned;
      for (const KeyLane& kl : pl.lanes) {
        if (kl.pin == nullptr) unpinned.push_back(kl);
      }
      std::vector<std::string> run_keys;
      size_t uj = 0;
      for (const KeyLane& kl : pl.lanes) {
        if (kl.pin != nullptr) {
          const Value& v = kl.pin->values[0];
          run_keys.push_back(
              kl.type == Type::kString
                  ? "std::string(" + EscapeString(v.AsString()) + ")"
                  : ValueLiteral(v));
        } else {
          run_keys.push_back(StrFormat("rk%zu", uj++));
        }
      }
      const std::string rkey =
          "std::make_tuple(" + Join(run_keys, ", ") + ")";
      const bool is_double = decl->value_type == Type::kDouble;

      // Emits one key run: rows [lo, hi) of `iter` accumulated locally,
      // one probe/commit per distinct key.
      auto emit_run = [&](const std::string& iter_open,
                          const std::string& iter_row) -> Status {
        if (is_double) {
          std::string slot = Fresh("slot");
          Line(out, StrFormat("double* %s = %s_.find_value(%s);",
                              slot.c_str(), s.stmt.target.c_str(),
                              rkey.c_str()));
          Line(out, "++vec_runs;");
          auto body = [&](bool live) -> Status {
            Line(out, iter_open);
            ++indent_;
            Line(out, iter_row);
            Sink sink = [&](const Env&, const std::string& value) -> Status {
              if (live) {
                // The exact add() sequence on a live key: doubles are never
                // erased by add, so the slot stays valid for the run.
                Line(out, StrFormat("*%s += static_cast<double>(%s);",
                                    slot.c_str(), value.c_str()));
              } else {
                Line(out, StrFormat("upd_%s_(%s, static_cast<double>(%s));",
                                    s.stmt.target.c_str(), rkey.c_str(),
                                    value.c_str()));
              }
              return Status::OK();
            };
            DBT_RETURN_IF_ERROR(
                emit_bodies([&](const tir::Stmt&) { return sink; }));
            --indent_;
            Line(out, "}");
            return Status::OK();
          };
          Line(out, StrFormat("if (%s != nullptr) {", slot.c_str()));
          ++indent_;
          DBT_RETURN_IF_ERROR(body(true));
          --indent_;
          Line(out, "} else {");
          ++indent_;
          DBT_RETURN_IF_ERROR(body(false));
          --indent_;
          Line(out, "}");
          return Status::OK();
        }
        std::string acc = Fresh("acc");
        Line(out, StrFormat("int64_t %s = 0;", acc.c_str()));
        Line(out, iter_open);
        ++indent_;
        Line(out, iter_row);
        Sink sink = [&](const Env&, const std::string& value) -> Status {
          Line(out, StrFormat("%s += static_cast<int64_t>(%s);", acc.c_str(),
                              value.c_str()));
          return Status::OK();
        };
        DBT_RETURN_IF_ERROR(
            emit_bodies([&](const tir::Stmt&) { return sink; }));
        --indent_;
        Line(out, "}");
        Line(out, "++vec_runs;");
        Line(out, StrFormat("upd_%s_(%s, %s);", s.stmt.target.c_str(),
                            rkey.c_str(), acc.c_str()));
        return Status::OK();
      };

      if (unpinned.empty()) {
        // All key lanes pinned (or scalar target): the class is one run.
        Line(out, StrFormat("if (%s > 0) {", cnt.c_str()));
        ++indent_;
        DBT_RETURN_IF_ERROR(emit_run(
            StrFormat("for (uint32_t ii = 0; ii < %s; ++ii) {", cnt.c_str()),
            row_at("ii")));
        --indent_;
        Line(out, "}");
      } else {
        // Stable sort of the survivors on the unpinned key lanes: per-key
        // row order stays ascending, so per-key write sequences are the
        // scalar ones.
        std::string srt = Fresh("srt");
        Line(out, StrFormat("dbt::SelBuf sb_%s;", srt.c_str()));
        Line(out, StrFormat("uint32_t* %s = sb_%s.data(%s);", srt.c_str(),
                            srt.c_str(), cnt.c_str()));
        if (base_sel) {
          Line(out, "if (base != nullptr) {");
          ++indent_;
          Line(out, StrFormat("std::copy(base, base + base_n, %s);",
                              srt.c_str()));
          --indent_;
          Line(out, "} else {");
          ++indent_;
          Line(out, StrFormat(
                        "for (uint32_t ii = 0; ii < base_n; ++ii) %s[ii] = ii;",
                        srt.c_str()));
          --indent_;
          Line(out, "}");
        } else {
          Line(out, StrFormat("std::copy(%s, %s + %s, %s);", sel.c_str(),
                              sel.c_str(), cnt.c_str(), srt.c_str()));
        }
        Line(out, StrFormat("std::stable_sort(%s, %s + %s, "
                            "[&](uint32_t ra, uint32_t rb) {",
                            srt.c_str(), srt.c_str(), cnt.c_str()));
        ++indent_;
        for (size_t j = 0; j + 1 < unpinned.size(); ++j) {
          Line(out, StrFormat("if (c%zu[ra] != c%zu[rb]) "
                              "return c%zu[ra] < c%zu[rb];",
                              unpinned[j].lane, unpinned[j].lane,
                              unpinned[j].lane, unpinned[j].lane));
        }
        Line(out, StrFormat("return c%zu[ra] < c%zu[rb];",
                            unpinned.back().lane, unpinned.back().lane));
        --indent_;
        Line(out, "});");
        std::string rv = Fresh("r");
        std::string rend = Fresh("rend");
        Line(out, StrFormat("uint32_t %s = 0;", rv.c_str()));
        Line(out, StrFormat("while (%s < %s) {", rv.c_str(), cnt.c_str()));
        ++indent_;
        std::string conj;
        for (size_t j = 0; j < unpinned.size(); ++j) {
          Line(out, StrFormat("const int64_t rk%zu = c%zu[%s[%s]];", j,
                              unpinned[j].lane, srt.c_str(), rv.c_str()));
          conj += StrFormat("%sc%zu[%s[%s]] == rk%zu", j == 0 ? "" : " && ",
                            unpinned[j].lane, srt.c_str(), rend.c_str(), j);
        }
        Line(out, StrFormat("uint32_t %s = %s + 1;", rend.c_str(),
                            rv.c_str()));
        Line(out, StrFormat("while (%s < %s && %s) ++%s;", rend.c_str(),
                            cnt.c_str(), conj.c_str(), rend.c_str()));
        DBT_RETURN_IF_ERROR(emit_run(
            StrFormat("for (uint32_t ii = %s; ii < %s; ++ii) {", rv.c_str(),
                      rend.c_str()),
            StrFormat("[[maybe_unused]] const uint32_t i = %s[ii];",
                      srt.c_str())));
        Line(out, StrFormat("%s = %s;", rv.c_str(), rend.c_str()));
        --indent_;
        Line(out, "}");
      }
    }

    if (opened) {
      --indent_;
      Line(out, "}");
    }
    --indent_;
    Line(out, "}");
  }

  Line(out, "selected_rows_.fetch_add(vec_rows, std::memory_order_relaxed);");
  Line(out, "probe_runs_.fetch_add(vec_runs, std::memory_order_relaxed);");
  --indent_;
  Line(out, "}");
  return Status::OK();
}

Status Generator::EmitViews(std::string* out) {
  for (const compiler::ViewSpec& view : p_.views) {
    // Row type: key columns are part of `columns` already.
    std::vector<std::string> col_types;
    for (const auto& c : view.columns) col_types.emplace_back(CppType(c.type));
    std::string row_type = "std::tuple<" + Join(col_types, ", ") + ">";
    Line(out, StrFormat("std::vector<%s> view_%s() {", row_type.c_str(),
                        view.name.c_str()));
    ++indent_;
    Line(out, StrFormat("std::vector<%s> out;", row_type.c_str()));

    auto emit_columns = [&](const Env& env,
                            const std::string& key_expr) -> Status {
      std::vector<std::string> cols;
      for (const auto& c : view.columns) {
        if (c.kind == compiler::ViewColumn::Kind::kTerm) {
          DBT_ASSIGN_OR_RETURN(std::string v, TermCpp(c.value, env));
          cols.push_back(StrFormat("static_cast<%s>(%s)", CppType(c.type),
                                   v.c_str()));
        } else {
          std::string tmp = Fresh("x");
          const MapDecl* decl = decls_.at(c.extreme_map);
          Line(out, StrFormat("%s %s{};", CppType(c.type), tmp.c_str()));
          Line(out, StrFormat("%s_.%s(%s, &%s);", c.extreme_map.c_str(),
                              decl->extreme_kind == sql::AggKind::kMin
                                  ? "min"
                                  : "max",
                              key_expr.c_str(), tmp.c_str()));
          cols.push_back(tmp);
        }
      }
      Line(out, StrFormat("out.emplace_back(%s);", Join(cols, ", ").c_str()));
      return Status::OK();
    };

    // HAVING: accumulate the guard indicator; zero suppresses the row.
    auto emit_having_guard = [&](const Env& env) -> Result<std::string> {
      if (view.having == nullptr) return std::string();
      std::string acc = Fresh("hv");
      Line(out, StrFormat("int64_t %s = 0;", acc.c_str()));
      Sink sink = [&](const Env& /*e2*/, const std::string& value) -> Status {
        // The guard is a 0/1 indicator polynomial (OR contributes negative
        // correction terms), so contributions sum — they do not saturate.
        Line(out, StrFormat("%s += static_cast<int64_t>(%s);", acc.c_str(),
                            value.c_str()));
        return Status::OK();
      };
      DBT_RETURN_IF_ERROR(EmitContribs(view.having, env, out, sink));
      return acc;
    };

    if (view.key_vars.empty()) {
      Env env;
      env.store_flag = "true";
      DBT_ASSIGN_OR_RETURN(std::string guard, emit_having_guard(env));
      if (!guard.empty()) {
        Line(out, StrFormat("if (%s != 0) {", guard.c_str()));
        ++indent_;
      }
      DBT_RETURN_IF_ERROR(emit_columns(env, "std::tuple<>{}"));
      if (!guard.empty()) {
        --indent_;
        Line(out, "}");
      }
    } else {
      if (plan_.ok) {
        // Sharded domain: walk the partitions in fixed logical order, so
        // materialization is identical at every thread count.
        Line(out, "for (size_t shard = 0; shard < dbt::kNumShards; ++shard)");
        Line(out, StrFormat("for (const auto& dk : %s_.part(shard).entries()) {",
                            view.domain_map.c_str()));
      } else {
        Line(out, StrFormat("for (const auto& dk : %s_.entries()) {",
                            view.domain_map.c_str()));
      }
      ++indent_;
      Line(out, "if (dk.second == 0) continue;");
      Env env;
      env.store_flag = "true";
      for (size_t i = 0; i < view.key_vars.size(); ++i) {
        std::string name = Fresh("k");
        Line(out, StrFormat("[[maybe_unused]] const auto %s = "
                            "std::get<%zu>(dk.first);",
                            name.c_str(), i));
        env.vars[view.key_vars[i]] = name;
      }
      DBT_ASSIGN_OR_RETURN(std::string guard, emit_having_guard(env));
      if (!guard.empty()) {
        Line(out, StrFormat("if (%s == 0) continue;", guard.c_str()));
      }
      DBT_RETURN_IF_ERROR(emit_columns(env, "dk.first"));
      --indent_;
      Line(out, "}");
    }
    Line(out, "return out;");
    --indent_;
    Line(out, "}");
  }
  return Status::OK();
}

/// Per-relation fused batch handlers: one sign-parameterized entry point
/// per relation consumes a columnar (relation, op) group directly. When the
/// group's column layout matches the relation schema the handler scans the
/// flat typed arrays (no per-event Value unboxing); a layout mismatch falls
/// back to the row shim. Under a shard plan, large groups are
/// hash-partitioned on the relation's partition attribute into the fixed
/// logical shards and replayed on the worker pool; shard isolation (every
/// store partitioned on the same attribute) makes this equal to the
/// event-ordered replay, and the fixed shard count makes it identical at
/// every thread count.
Status Generator::EmitBatchHandlers(std::string* out) {
  for (const tir::Trigger& t : tir_.triggers) {
    const std::string& rel = t.relation;
    const size_t ncols = t.params.size();
    bool vec = VecEligible(t);
    if (vec) {
      // Emission size budget: a handler whose statement residuals are deep
      // join pyramids re-renders them once per selection class, and on such
      // triggers the prologue win is noise against the residual cost (the
      // wide q41 join). Dropping the oversized handler keeps dbtc output
      // lean (tools/check_gen_loc.sh) — the scalar per-row path remains.
      static constexpr size_t kVecEmitLineCap = 300;
      std::string vec_text;
      DBT_RETURN_IF_ERROR(EmitVecTrigger(t, &vec_text));
      const size_t lines =
          static_cast<size_t>(std::count(vec_text.begin(), vec_text.end(),
                                         '\n'));
      if (lines <= kVecEmitLineCap) {
        any_vec_ = true;
        out->append(vec_text);
      } else {
        vec = false;
        Line(out, StrFormat("// vec_%s elided: %zu lines exceeds the "
                            "emission budget (%zu)",
                            rel.c_str(), lines, kVecEmitLineCap));
      }
    }
    std::vector<std::string> tags(ncols), fields(ncols), elems(ncols);
    for (size_t i = 0; i < ncols; ++i) {
      switch (t.params[i].type) {
        case Type::kDouble:
          tags[i] = "kF64";
          fields[i] = "f64";
          elems[i] = "double";
          break;
        case Type::kString:
          tags[i] = "kStr";
          fields[i] = "str";
          elems[i] = "std::string";
          break;
        default:
          tags[i] = "kI64";
          fields[i] = "i64";
          elems[i] = "int64_t";
          break;
      }
    }
    Line(out, StrFormat("size_t on_batch_%s(const dbt::EventBatch::Group& g, "
                        "const int64_t sign) {",
                        rel.c_str()));
    ++indent_;
    // A group is all-insert or all-delete; a missing trigger side skips the
    // whole group (same events the per-event dispatcher would reject).
    if (!t.has_insert) Line(out, "if (sign > 0) return 0;");
    if (!t.has_delete) Line(out, "if (sign < 0) return 0;");
    Line(out, "const size_t n = g.rows;");
    std::string check = StrFormat("g.cols.size() == %zu", ncols);
    for (size_t i = 0; i < ncols; ++i) {
      check += StrFormat(" && g.cols[%zu].tag == dbt::EventColumn::Tag::%s",
                         i, tags[i].c_str());
    }
    Line(out, StrFormat("if (%s) {", check.c_str()));
    ++indent_;
    std::string col_args, vec_args;
    for (size_t i = 0; i < ncols; ++i) {
      Line(out, StrFormat("const %s* c%zu = g.cols[%zu].%s.data();",
                          elems[i].c_str(), i, i, fields[i].c_str()));
      col_args += StrFormat("c%zu[i], ", i);
      vec_args += StrFormat("c%zu, ", i);
    }
    if (plan_.ok) {
      Line(out, "if (n >= dbt::kShardBatchCutoff) {");
      ++indent_;
      Line(out, "std::vector<uint32_t> shard_idx[dbt::kNumShards];");
      Line(out, "for (uint32_t i = 0; i < n; ++i) {");
      ++indent_;
      Line(out, StrFormat("shard_idx[dbt::ShardOf(c%zu[i])].push_back(i);",
                          plan_.rel_pos.at(rel)));
      --indent_;
      Line(out, "}");
      Line(out, "dbt::shard_pool().RunShards(dbt::kNumShards, "
                "[&](size_t shard) {");
      ++indent_;
      if (vec) {
        // Selection runs AFTER the shard split, over each shard's
        // sub-range — never re-evaluated per row.
        Line(out, "if (dbt::SelectionEnabled()) {");
        ++indent_;
        Line(out, StrFormat("vec_%s(%sshard_idx[shard].data(), "
                            "static_cast<uint32_t>(shard_idx[shard].size()), "
                            "sign);",
                            rel.c_str(), vec_args.c_str()));
        --indent_;
        Line(out, "} else {");
        ++indent_;
        Line(out, "for (uint32_t i : shard_idx[shard]) {");
        ++indent_;
        Line(out, StrFormat("on_%s(%ssign);", rel.c_str(), col_args.c_str()));
        --indent_;
        Line(out, "}");
        --indent_;
        Line(out, "}");
      } else {
        Line(out, "for (uint32_t i : shard_idx[shard]) {");
        ++indent_;
        Line(out, StrFormat("on_%s(%ssign);", rel.c_str(), col_args.c_str()));
        --indent_;
        Line(out, "}");
      }
      --indent_;
      Line(out, "});");
      Line(out, "return n;");
      --indent_;
      Line(out, "}");
    }
    if (vec) {
      Line(out, "if (dbt::SelectionEnabled() && n > 1) {");
      ++indent_;
      Line(out, StrFormat("vec_%s(%snullptr, static_cast<uint32_t>(n), "
                          "sign);",
                          rel.c_str(), vec_args.c_str()));
      Line(out, "return n;");
      --indent_;
      Line(out, "}");
    }
    Line(out, "for (size_t i = 0; i < n; ++i) {");
    ++indent_;
    Line(out, StrFormat("on_%s(%ssign);", rel.c_str(), col_args.c_str()));
    --indent_;
    Line(out, "}");
    Line(out, "return n;");
    --indent_;
    Line(out, "}");
    // Row shim fallback (column tags diverged from the schema, e.g. a feed
    // that mixed value types within one column).
    std::string row_args;
    for (size_t i = 0; i < ncols; ++i) {
      switch (t.params[i].type) {
        case Type::kDouble:
          row_args += StrFormat("dbt::AsDouble(r[%zu]), ", i);
          break;
        case Type::kString:
          row_args += StrFormat("dbt::AsString(r[%zu]), ", i);
          break;
        default:
          row_args += StrFormat("dbt::AsInt(r[%zu]), ", i);
          break;
      }
    }
    Line(out, "for (size_t i = 0; i < n; ++i) {");
    ++indent_;
    Line(out, "const std::vector<dbt::Value> r = g.row(i);");
    Line(out, StrFormat("on_%s(%ssign);", rel.c_str(), row_args.c_str()));
    --indent_;
    Line(out, "}");
    Line(out, "return n;");
    --indent_;
    Line(out, "}");
  }
  return Status::OK();
}

Status Generator::EmitDispatcher(std::string* out) {
  Line(out,
       "bool on_event(const std::string& relation, bool is_insert, const "
       "std::vector<dbt::Value>& t) override {");
  ++indent_;
  for (const tir::Trigger& trig : tir_.triggers) {
    Line(out, StrFormat("if (relation == \"%s\") {", trig.relation.c_str()));
    ++indent_;
    if (!trig.has_insert) Line(out, "if (is_insert) return false;");
    if (!trig.has_delete) Line(out, "if (!is_insert) return false;");
    std::vector<std::string> conv;
    for (size_t i = 0; i < trig.params.size(); ++i) {
      switch (trig.params[i].type) {
        case Type::kDouble:
          conv.push_back(StrFormat("dbt::AsDouble(t[%zu])", i));
          break;
        case Type::kString:
          conv.push_back(StrFormat("dbt::AsString(t[%zu])", i));
          break;
        default:
          conv.push_back(StrFormat("dbt::AsInt(t[%zu])", i));
          break;
      }
    }
    conv.push_back("is_insert ? INT64_C(1) : INT64_C(-1)");
    Line(out, StrFormat("on_%s(%s);", trig.relation.c_str(),
                        Join(conv, ", ").c_str()));
    Line(out, "return true;");
    --indent_;
    Line(out, "}");
  }
  Line(out, "return false;");
  --indent_;
  Line(out, "}");

  // Group-wise batch dispatch: one relation comparison per (relation, op)
  // group, then the fused columnar handler — no conversion pass.
  Line(out, "size_t on_batch(const dbt::EventBatch& batch) override {");
  ++indent_;
  Line(out, "size_t handled = 0;");
  Line(out, "for (const auto& g : batch.groups()) {");
  ++indent_;
  for (const tir::Trigger& trig : tir_.triggers) {
    Line(out, StrFormat("if (g.relation == \"%s\") { handled += "
                        "on_batch_%s(g, g.is_insert ? INT64_C(1) : "
                        "INT64_C(-1)); continue; }",
                        trig.relation.c_str(), trig.relation.c_str()));
  }
  --indent_;
  Line(out, "}");
  Line(out, "return handled;");
  --indent_;
  Line(out, "}");

  // Memory accounting for the bakeoff's memory bench.
  Line(out, "size_t total_map_entries() const override {");
  ++indent_;
  Line(out, "size_t n = 0;");
  for (const MapDecl& m : p_.maps) {
    Line(out, StrFormat("n += %s_.size();", m.name.c_str()));
  }
  Line(out, "return n;");
  --indent_;
  Line(out, "}");

  // True retained bytes: each container reports its slab-resident footprint
  // (probe arrays, recycled chunks) plus spilled string payloads.
  Line(out, "size_t state_bytes() const override {");
  ++indent_;
  Line(out, "size_t bytes = 0;");
  for (const std::string& rel : rels_) {
    if (live_rels_.count(rel) == 0) continue;
    Line(out, StrFormat("bytes += rel_%s_.bytes();", rel.c_str()));
  }
  for (const MapDecl& m : p_.maps) {
    Line(out, StrFormat("bytes += %s_.bytes();", m.name.c_str()));
  }
  for (size_t i = 0; i < index_reqs_.size(); ++i) {
    Line(out, StrFormat("bytes += idx%zu_.bytes();", i));
  }
  Line(out, "return bytes;");
  --indent_;
  Line(out, "}");

  if (any_vec_) {
    // Selection-path observability for the bench harness.
    Line(out, "uint64_t selected_rows() const override {");
    ++indent_;
    Line(out, "return selected_rows_.load(std::memory_order_relaxed);");
    --indent_;
    Line(out, "}");
    Line(out, "uint64_t probe_runs() const override {");
    ++indent_;
    Line(out, "return probe_runs_.load(std::memory_order_relaxed);");
    --indent_;
    Line(out, "}");
  }
  return Status::OK();
}

/// Dynamic view accessors: the generated program is drivable and readable
/// through dbt::StreamProgram without knowing the typed row shapes.
Status Generator::EmitViewShim(std::string* out) {
  std::vector<std::string> names;
  for (const compiler::ViewSpec& v : p_.views) {
    names.push_back(EscapeString(v.name));
  }
  Line(out, "std::vector<std::string> view_names() const override {");
  ++indent_;
  Line(out, StrFormat("return {%s};", Join(names, ", ").c_str()));
  --indent_;
  Line(out, "}");

  Line(out,
       "std::vector<std::string> view_column_names(const std::string& view) "
       "const override {");
  ++indent_;
  for (const compiler::ViewSpec& v : p_.views) {
    std::vector<std::string> cols;
    for (const auto& c : v.columns) cols.push_back(EscapeString(c.name));
    Line(out, StrFormat("if (view == %s) return {%s};",
                        EscapeString(v.name).c_str(),
                        Join(cols, ", ").c_str()));
  }
  Line(out, "return {};");
  --indent_;
  Line(out, "}");

  Line(out,
       "std::vector<std::vector<dbt::Value>> view_rows(const std::string& "
       "view) override {");
  ++indent_;
  Line(out, "std::vector<std::vector<dbt::Value>> out;");
  for (const compiler::ViewSpec& v : p_.views) {
    Line(out, StrFormat("if (view == %s) {", EscapeString(v.name).c_str()));
    ++indent_;
    Line(out, StrFormat("for (const auto& r : view_%s()) {", v.name.c_str()));
    ++indent_;
    std::vector<std::string> cells;
    for (size_t i = 0; i < v.columns.size(); ++i) {
      cells.push_back(StrFormat("dbt::Value{std::get<%zu>(r)}", i));
    }
    Line(out, StrFormat("out.push_back({%s});", Join(cells, ", ").c_str()));
    --indent_;
    Line(out, "}");
    --indent_;
    Line(out, "}");
  }
  Line(out, "return out;");
  --indent_;
  Line(out, "}");

  // Snapshot-publish hook: one consistent rendering of every view per
  // publish, consumed by the concurrent serving tier.
  Line(out, "std::vector<dbt::ViewRows> publish_snapshot() override {");
  ++indent_;
  Line(out, "std::vector<dbt::ViewRows> out;");
  Line(out, StrFormat("out.reserve(%zu);", p_.views.size()));
  for (const compiler::ViewSpec& v : p_.views) {
    Line(out, StrFormat("out.push_back(dbt::ViewRows{%s, view_rows(%s)});",
                        EscapeString(v.name).c_str(),
                        EscapeString(v.name).c_str()));
  }
  Line(out, "return out;");
  --indent_;
  Line(out, "}");
  return Status::OK();
}

Result<std::string> Generator::Run() {
  std::string body;
  DBT_RETURN_IF_ERROR(EmitMaps(&body));
  Line(&body, "");
  DBT_RETURN_IF_ERROR(EmitInitFunctions(&body));
  Line(&body, "");
  for (const tir::Trigger& trig : tir_.triggers) {
    DBT_RETURN_IF_ERROR(EmitTrigger(trig, &body));
    Line(&body, "");
  }
  DBT_RETURN_IF_ERROR(EmitViews(&body));
  Line(&body, "");
  DBT_RETURN_IF_ERROR(EmitViewShim(&body));
  Line(&body, "");
  DBT_RETURN_IF_ERROR(EmitBatchHandlers(&body));
  Line(&body, "");
  DBT_RETURN_IF_ERROR(EmitDispatcher(&body));
  Line(&body, "");

  // Secondary slice indexes discovered during emission, plus the mutation
  // wrappers that keep them in sync. In-class member order is irrelevant;
  // wrappers were referenced above and are defined here.
  Line(&body, "// --- secondary slice indexes ---");
  for (size_t i = 0; i < index_reqs_.size(); ++i) {
    const IndexReq& req = index_reqs_[i];
    std::vector<Type> prefix_types;
    for (size_t p : req.positions) prefix_types.push_back(req.key_types[p]);
    Line(&body, StrFormat("dbt::SliceIndex<%s, %s> idx%zu_;  // %s on (%s)",
                          KeyType(prefix_types).c_str(),
                          KeyType(req.key_types).c_str(), i,
                          req.store.c_str(),
                          [&] {
                            std::vector<std::string> ps;
                            for (size_t p : req.positions) {
                              ps.push_back(std::to_string(p));
                            }
                            return Join(ps, ",");
                          }()
                              .c_str()));
  }
  Line(&body, "// --- mutation wrappers (map + eager index maintenance) ---");
  auto emit_wrappers = [&](const std::string& store,
                           const std::vector<Type>& key_types,
                           const std::string& value_type) {
    std::string key_type = KeyType(key_types);
    std::string inserts;
    std::string erases;
    for (size_t i = 0; i < index_reqs_.size(); ++i) {
      const IndexReq& req = index_reqs_[i];
      if (req.store != store) continue;
      std::vector<std::string> gets;
      for (size_t p : req.positions) {
        gets.push_back(StrFormat("std::get<%zu>(k)", p));
      }
      inserts += StrFormat(" idx%zu_.insert(std::make_tuple(%s), k);", i,
                           Join(gets, ", ").c_str());
      erases += StrFormat(" idx%zu_.erase(std::make_tuple(%s), k);", i,
                          Join(gets, ", ").c_str());
    }
    if (inserts.empty()) {
      Line(&body,
           StrFormat("void upd_%s(const %s& k, %s d) { %s.add(k, d); }",
                     store.c_str(), key_type.c_str(), value_type.c_str(),
                     store.c_str()));
      Line(&body,
           StrFormat("void st_%s(const %s& k, %s v) { %s.set(k, v); }",
                     store.c_str(), key_type.c_str(), value_type.c_str(),
                     store.c_str()));
      return;
    }
    // Indexed stores: the Upd result drives the slice-index maintenance, so
    // a key erased by the map (count back to zero) leaves no stale entry.
    Line(&body,
         StrFormat("void upd_%s(const %s& k, %s d) { const dbt::Upd r = "
                   "%s.add(k, d); if (r == dbt::Upd::kLive) {%s } else if (r "
                   "== dbt::Upd::kErased) {%s } }",
                   store.c_str(), key_type.c_str(), value_type.c_str(),
                   store.c_str(), inserts.c_str(), erases.c_str()));
    Line(&body,
         StrFormat("void st_%s(const %s& k, %s v) { const dbt::Upd r = "
                   "%s.set(k, v); if (r == dbt::Upd::kLive) {%s } else {%s } "
                   "}",
                   store.c_str(), key_type.c_str(), value_type.c_str(),
                   store.c_str(), inserts.c_str(), erases.c_str()));
  };
  for (const std::string& rel : rels_) {
    if (live_rels_.count(rel) == 0) continue;
    const Schema* schema = RelSchema(rel);
    std::vector<Type> kt;
    for (size_t i = 0; i < schema->num_columns(); ++i) {
      kt.push_back(schema->column_type(i));
    }
    emit_wrappers(RelMapName(rel), kt, "int64_t");
  }
  for (const MapDecl& m : p_.maps) {
    if (m.is_extreme) continue;
    emit_wrappers(m.name + "_", m.key_types, CppType(m.value_type));
  }
  // State serde: published relation layouts for boundary validation, plus
  // whole-state save/load over every container member. The slice indexes
  // are derived state — load_state rebuilds them from the restored stores.
  Line(&body, "// --- state capture (checkpoint/restore) ---");
  Line(&body, "std::vector<dbt::RelationSchema> relation_schemas() const "
              "override {");
  ++indent_;
  {
    std::vector<std::string> schemas;
    for (const Schema& schema : p_.catalog.relations()) {
      std::vector<std::string> lanes;
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        switch (schema.column_type(i)) {
          case Type::kString:
            lanes.push_back("dbt::EventColumn::Tag::kStr");
            break;
          case Type::kDouble:
            lanes.push_back("dbt::EventColumn::Tag::kF64");
            break;
          default:
            lanes.push_back("dbt::EventColumn::Tag::kI64");
            break;
        }
      }
      schemas.push_back(StrFormat("{%s, {%s}}",
                                  EscapeString(schema.name()).c_str(),
                                  Join(lanes, ", ").c_str()));
    }
    Line(&body, StrFormat("return {%s};", Join(schemas, ", ").c_str()));
  }
  --indent_;
  Line(&body, "}");

  // Stores in emission order: live base relations (set order), then the
  // aggregate maps in declaration order. Save and load must agree.
  std::vector<std::string> state_stores;
  for (const std::string& rel : rels_) {
    if (live_rels_.count(rel) != 0) state_stores.push_back(RelMapName(rel));
  }
  for (const MapDecl& m : p_.maps) state_stores.push_back(m.name + "_");

  Line(&body, "bool save_state(dbt::Ser& ser) const override {");
  ++indent_;
  Line(&body, "ser.u32(1u);  // program state format version");
  for (const std::string& store : state_stores) {
    Line(&body, StrFormat("%s.save(ser);", store.c_str()));
  }
  Line(&body, "return true;");
  --indent_;
  Line(&body, "}");

  Line(&body, "bool load_state(dbt::Deser& deser) override {");
  ++indent_;
  Line(&body, "if (deser.u32() != 1u) return false;");
  for (const std::string& store : state_stores) {
    Line(&body, StrFormat("if (!%s.load(deser)) return false;", store.c_str()));
  }
  for (size_t i = 0; i < index_reqs_.size(); ++i) {
    const IndexReq& req = index_reqs_[i];
    std::vector<std::string> gets;
    for (size_t p : req.positions) {
      gets.push_back(StrFormat("std::get<%zu>(k)", p));
    }
    Line(&body, StrFormat("idx%zu_.clear();", i));
    Line(&body,
         StrFormat("%s.for_each([this](const auto& k, const auto& v) { "
                   "(void)v; idx%zu_.insert(std::make_tuple(%s), k); });",
                   req.store.c_str(), i, Join(gets, ", ").c_str()));
  }
  Line(&body, "return deser.ok();");
  --indent_;
  Line(&body, "}");

  if (any_vec_) {
    Line(&body, "// --- selection-path counters ---");
    Line(&body, "std::atomic<uint64_t> selected_rows_{0};");
    Line(&body, "std::atomic<uint64_t> probe_runs_{0};");
  }

  std::string out;
  out += "// Generated by dbtc (DBToaster SQL-to-C++ compiler). DO NOT EDIT.\n";
  for (const compiler::ViewSpec& v : p_.views) {
    out += "//   view " + v.name + ": " + v.sql + "\n";
  }
  out += "#pragma once\n";
  out += "#include <algorithm>\n#include <cstdint>\n#include <set>\n";
  out += "#include <string>\n#include <tuple>\n#include <vector>\n";
  out += "#include \"" + opts_.runtime_header + "\"\n\n";
  out += "namespace " + opts_.name_space + " {\n\n";
  // Guarded so several generated headers can share one translation unit.
  out += "#ifndef DBT_GEN_DETAIL_HELPERS_\n";
  out += "#define DBT_GEN_DETAIL_HELPERS_\n";
  out += "inline std::string dbt_detail_to_string(int64_t v) { return "
         "std::to_string(v); }\n";
  out += "inline std::string dbt_detail_to_string(double v) { return "
         "std::to_string(v); }\n";
  out += "inline std::string dbt_detail_to_string(const std::string& v) { "
         "return v; }\n";
  out += "#endif  // DBT_GEN_DETAIL_HELPERS_\n\n";
  out += "struct " + opts_.class_name + " : public dbt::StreamProgram {\n";
  out += body;
  out += "};\n\n}  // namespace " + opts_.name_space + "\n";
  return out;
}

}  // namespace

Result<std::string> GenerateCpp(const Program& program,
                                const GenOptions& options) {
  // Refuse to emit code for a module that fails static verification: a bad
  // sign mask or stale arity must die here, not in the generated C++.
  {
    Status verified = tir::VerifyOrError(tir::Lower(program), "cpp_gen");
    if (!verified.ok()) return verified;
  }
  Generator gen(program, options);
  return gen.Run();
}

}  // namespace dbtoaster::codegen
