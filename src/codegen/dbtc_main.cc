// dbtc — the DBToaster SQL-to-C++ compiler driver.
//
// Usage:
//   dbtc <script.sql> [-o out.hpp] [--name ClassName] [--trace] [--program]
//
// The script contains CREATE TABLE statements followed by one or more
// SELECT queries (named q0, q1, ... in order). Output is a self-contained
// C++ header (see cpp_gen.h). --trace prints the Figure-2-style recursive
// compilation table; --program prints the trigger-program listing.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/catalog/catalog.h"
#include "src/codegen/cpp_gen.h"
#include "src/compiler/compile.h"
#include "src/sql/parser.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dbtc <script.sql> [-o out.hpp] [--name ClassName] "
               "[--trace] [--program]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbtoaster;

  std::string input, output, class_name = "Program";
  bool show_trace = false, show_program = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      class_name = argv[++i];
    } else if (arg == "--trace") {
      show_trace = true;
    } else if (arg == "--program") {
      show_program = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) return Usage();

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "dbtc: cannot open %s\n", input.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  auto script = sql::ParseScript(buf.str());
  if (!script.ok()) {
    std::fprintf(stderr, "dbtc: %s\n", script.status().ToString().c_str());
    return 1;
  }
  Catalog catalog;
  for (const auto& t : script.value().tables) {
    Status s = catalog.AddRelation(t);
    if (!s.ok()) {
      std::fprintf(stderr, "dbtc: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (script.value().queries.empty()) {
    std::fprintf(stderr, "dbtc: script contains no SELECT queries\n");
    return 1;
  }

  compiler::Compiler compiler(catalog);
  for (const auto& q : script.value().queries) {
    Status s = compiler.AddQuery(q.name, *q.select);
    if (!s.ok()) {
      std::fprintf(stderr, "dbtc: query %s: %s\n", q.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  auto program = compiler.Compile();
  if (!program.ok()) {
    std::fprintf(stderr, "dbtc: %s\n", program.status().ToString().c_str());
    return 1;
  }

  if (show_trace) {
    std::printf("%s\n", program.value().TraceTable().c_str());
  }
  if (show_program) {
    std::printf("%s\n", program.value().ToString().c_str());
  }

  codegen::GenOptions opts;
  opts.class_name = class_name;
  auto code = codegen::GenerateCpp(program.value(), opts);
  if (!code.ok()) {
    std::fprintf(stderr, "dbtc: %s\n", code.status().ToString().c_str());
    return 1;
  }
  if (output.empty()) {
    if (!show_trace && !show_program) std::printf("%s", code.value().c_str());
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "dbtc: cannot write %s\n", output.c_str());
      return 1;
    }
    out << code.value();
  }
  return 0;
}
