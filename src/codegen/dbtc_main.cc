// dbtc — the DBToaster SQL-to-C++ compiler driver.
//
// Usage:
//   dbtc <script.sql> [-o out.hpp] [--name ClassName] [--trace] [--program]
//        [--emit-ir] [--verify[=strict]]
//   dbtc --version
//
// The script contains CREATE TABLE statements followed by one or more
// SELECT queries (named q0, q1, ... in order). Output is a self-contained
// C++ header (see cpp_gen.h). --trace prints the Figure-2-style recursive
// compilation table; --program prints the trigger-program listing;
// --emit-ir prints the typed trigger IR (the sign-unified mid-layer both
// backends consume) in its stable text form and emits no C++.
//
// Every lowered module is verified (tir::Verify) before any C++ is emitted;
// verifier errors are reported like parse errors and exit non-zero.
// --verify runs the checks standalone (no C++ output), printing warnings
// too; --verify=strict additionally promotes warnings to errors.
//
// Exit codes: 0 success, 1 input/compile/verification error (diagnostics
// carry line:column or relation:stmt positions), 2 usage error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/catalog/catalog.h"
#include "src/codegen/cpp_gen.h"
#include "src/compiler/compile.h"
#include "src/compiler/tir.h"
#include "src/compiler/tir_verify.h"
#include "src/sql/parser.h"

namespace {

constexpr const char kVersion[] = "0.2.0";

int Usage() {
  std::fprintf(stderr,
               "usage: dbtc <script.sql> [-o out.hpp] [--name ClassName] "
               "[--trace] [--program] [--emit-ir] [--verify[=strict]]\n"
               "       dbtc --version\n");
  return 2;
}

/// Report an input-related diagnostic as "dbtc: <file>: <message>"; parse
/// errors already carry their "(at line L:C)" position.
int InputError(const std::string& input, const std::string& message) {
  std::fprintf(stderr, "dbtc: %s: %s\n", input.c_str(), message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbtoaster;

  std::string input, output, class_name = "Program";
  bool show_trace = false, show_program = false, emit_ir = false;
  bool verify_only = false, verify_strict = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("dbtc %s\n", kVersion);
      return 0;
    } else if (arg == "--verify" || arg == "--verify=strict") {
      verify_only = true;
      verify_strict = arg == "--verify=strict";
    } else if (arg == "-o" || arg == "--name") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dbtc: option '%s' requires an argument\n",
                     arg.c_str());
        return Usage();
      }
      (arg == "-o" ? output : class_name) = argv[++i];
    } else if (arg == "--trace") {
      show_trace = true;
    } else if (arg == "--program") {
      show_program = true;
    } else if (arg == "--emit-ir") {
      emit_ir = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dbtc: unknown option '%s'\n", arg.c_str());
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      std::fprintf(stderr, "dbtc: unexpected argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "dbtc: no input script\n");
    return Usage();
  }

  std::ifstream in(input);
  if (!in) {
    return InputError(input, "cannot open file");
  }
  std::stringstream buf;
  buf << in.rdbuf();

  auto script = sql::ParseScript(buf.str());
  if (!script.ok()) {
    return InputError(input, script.status().ToString());
  }
  Catalog catalog;
  for (const auto& t : script.value().tables) {
    Status s = catalog.AddRelation(t);
    if (!s.ok()) {
      return InputError(input, s.ToString());
    }
  }
  if (script.value().queries.empty()) {
    return InputError(input, "script contains no SELECT queries");
  }

  compiler::Compiler compiler(catalog);
  for (const auto& q : script.value().queries) {
    Status s = compiler.AddQuery(q.name, *q.select);
    if (!s.ok()) {
      return InputError(input, "query " + q.name + ": " + s.ToString());
    }
  }
  auto program = compiler.Compile();
  if (!program.ok()) {
    return InputError(input, program.status().ToString());
  }

  if (show_trace) {
    std::printf("%s\n", program.value().TraceTable().c_str());
  }
  if (show_program) {
    std::printf("%s\n", program.value().ToString().c_str());
  }

  // Every lowered module passes the static verifier before any backend may
  // consume it; --verify runs the same checks standalone and prints
  // warnings too.
  tir::Module module = tir::Lower(program.value());
  tir::VerifyResult verdict = tir::Verify(module);
  if (verify_only) {
    const std::string all = verdict.ToString(input);
    if (!all.empty()) std::fprintf(stderr, "%s", all.c_str());
    const bool ok = verdict.ok(verify_strict);
    std::printf("dbtc: %s: verification %s (%zu error%s, %zu warning%s)\n",
                input.c_str(), ok ? "passed" : "FAILED", verdict.num_errors,
                verdict.num_errors == 1 ? "" : "s", verdict.num_warnings,
                verdict.num_warnings == 1 ? "" : "s");
    return ok ? 0 : 1;
  }
  if (!verdict.ok()) {
    for (const auto& d : verdict.diagnostics) {
      if (d.severity != tir::Diagnostic::Severity::kError) continue;
      std::fprintf(stderr, "dbtc: %s: %s\n", input.c_str(),
                   d.ToString().c_str());
    }
    return 1;
  }

  if (emit_ir) {
    const std::string text = module.ToText();
    if (output.empty()) {
      std::printf("%s", text.c_str());
    } else {
      std::ofstream out(output);
      if (!out) {
        std::fprintf(stderr, "dbtc: cannot write %s\n", output.c_str());
        return 1;
      }
      out << text;
    }
    return 0;
  }

  codegen::GenOptions opts;
  opts.class_name = class_name;
  auto code = codegen::GenerateCpp(program.value(), opts);
  if (!code.ok()) {
    std::fprintf(stderr, "dbtc: %s\n", code.status().ToString().c_str());
    return 1;
  }
  if (output.empty()) {
    if (!show_trace && !show_program) std::printf("%s", code.value().c_str());
  } else {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "dbtc: cannot write %s\n", output.c_str());
      return 1;
    }
    out << code.value();
  }
  return 0;
}
