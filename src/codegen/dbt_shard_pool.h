// The process-wide worker pool driving hash-sharded parallel ApplyBatch in
// every engine: dbtc-generated programs' on_batch_<R> handlers, the
// interpreted engine's parallel delta phase and the re-evaluation
// baseline's multi-view refresh all share this one pool. Self-contained on
// purpose (std only): it ships next to dbt_flat_map.h / dbtoaster_runtime.h
// so generated sources compile with just this directory on the include
// path, and the interpreted runtime includes it without pulling in the
// full codegen runtime.
#ifndef DBTOASTER_CODEGEN_DBT_SHARD_POOL_H_
#define DBTOASTER_CODEGEN_DBT_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbt {

/// Minimum group size before a batch handler bothers to shard: below this,
/// partitioning overhead beats any parallel win and the event-ordered loop
/// is used instead.
inline constexpr size_t kShardBatchCutoff = 64;

/// Persistent worker pool. `RunShards(n, fn)` runs fn(0) .. fn(n-1), shard
/// s on worker s % threads(); each worker processes its shards in
/// increasing order, and the call returns after all shards finish (the
/// merge barrier). With threads() <= 1 everything runs inline on the
/// caller — the same shard order, which is what makes thread count
/// invisible to results.
class ShardPool {
 public:
  static ShardPool& Instance() {
    static ShardPool pool;
    return pool;
  }

  size_t threads() const { return threads_.load(std::memory_order_relaxed); }

  /// Set the worker count (clamped to [1, 256]). Existing workers are torn
  /// down; the pool respawns lazily on the next parallel RunShards.
  void set_threads(size_t n) {
    if (n < 1) n = 1;
    if (n > 256) n = 256;
    StopWorkers();
    threads_.store(n, std::memory_order_relaxed);
  }

  void RunShards(size_t num_shards, const std::function<void(size_t)>& fn) {
    const size_t T = threads();
    // Inline when sequential, trivial, or re-entered from inside a shard
    // callback (a nested parallel region would corrupt the single job
    // slot and deadlock the outer barrier).
    if (T <= 1 || num_shards <= 1 || in_shard_region_) {
      for (size_t s = 0; s < num_shards; ++s) fn(s);
      return;
    }
    const size_t active = T < num_shards ? T : num_shards;
    {
      std::unique_lock<std::mutex> lk(mu_);
      EnsureWorkers(lk);
      job_fn_ = &fn;
      job_shards_ = num_shards;
      job_active_ = active;
      done_ = 0;
      ++gen_;
      cv_.notify_all();
    }
    // The caller is worker 0; its stripe also counts as inside the region,
    // so a nested RunShards from fn degrades to inline instead of touching
    // the live job slot.
    in_shard_region_ = true;
    for (size_t s = 0; s < num_shards; s += active) fn(s);
    in_shard_region_ = false;
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_ == workers_.size(); });
    job_fn_ = nullptr;
  }

  ~ShardPool() { StopWorkers(); }

 private:
  ShardPool() {
    if (const char* env = std::getenv("DBT_THREADS")) {
      const long n = std::atol(env);
      if (n > 0) set_threads(static_cast<size_t>(n));
    }
  }

  void EnsureWorkers(std::unique_lock<std::mutex>&) {
    const size_t want = threads() - 1;
    if (workers_.size() == want) return;
    for (size_t i = workers_.size(); i < want; ++i) {
      workers_.emplace_back([this, idx = i + 1] { WorkerLoop(idx); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (workers_.empty()) return;
      stop_ = true;
      cv_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    stop_ = false;
  }

  void WorkerLoop(size_t idx) {
    in_shard_region_ = true;
    uint64_t seen = 0;
    while (true) {
      const std::function<void(size_t)>* fn = nullptr;
      size_t num_shards = 0, active = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || gen_ != seen; });
        if (stop_) return;
        seen = gen_;
        fn = job_fn_;
        num_shards = job_shards_;
        active = job_active_;
      }
      if (idx < active) {
        for (size_t s = idx; s < num_shards; s += active) (*fn)(s);
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (++done_ == workers_.size()) done_cv_.notify_all();
    }
  }

  std::atomic<size_t> threads_{1};
  std::mutex mu_;
  std::condition_variable cv_;        ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for completion
  std::vector<std::thread> workers_;  ///< worker ids 1 .. threads() - 1
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_shards_ = 0;
  size_t job_active_ = 0;
  size_t done_ = 0;
  uint64_t gen_ = 0;
  bool stop_ = false;
  /// True while this thread is executing a shard callback (worker threads
  /// permanently; the submitting thread during its own stripe).
  static thread_local bool in_shard_region_;
};

inline thread_local bool ShardPool::in_shard_region_ = false;

inline ShardPool& shard_pool() { return ShardPool::Instance(); }

}  // namespace dbt

#endif  // DBTOASTER_CODEGEN_DBT_SHARD_POOL_H_
