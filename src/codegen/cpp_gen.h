// C++ code generation from compiled trigger programs — the paper's headline
// artifact: "recursively compiling view maintenance queries into simple C++
// functions for evaluating database updates".
//
// The emitted source is self-contained (depends only on
// dbtoaster_runtime.h) and exposes:
//   * typed event handlers  on_insert_<REL>(...) / on_delete_<REL>(...)
//   * a dynamic dispatcher  on_event(relation, is_insert, tuple)
//   * view accessors        view_<name>() returning materialised rows
// so it can run standalone or be embedded in application logic (§2's two
// modes; ahead-of-time compilation stands in for the LLVM JIT).
#ifndef DBTOASTER_CODEGEN_CPP_GEN_H_
#define DBTOASTER_CODEGEN_CPP_GEN_H_

#include <string>

#include "src/common/status.h"
#include "src/compiler/program.h"

namespace dbtoaster::codegen {

struct GenOptions {
  std::string class_name = "Program";
  std::string name_space = "dbtoaster_gen";
  /// Include path of the support header in the emitted #include directive.
  std::string runtime_header = "dbtoaster_runtime.h";
};

/// Emit a complete C++ header implementing `program`.
Result<std::string> GenerateCpp(const compiler::Program& program,
                                const GenOptions& options = {});

}  // namespace dbtoaster::codegen

#endif  // DBTOASTER_CODEGEN_CPP_GEN_H_
