// The ring calculus (map algebra) at the core of DBToaster's compiler.
//
// An expression denotes a generalized multiset relation: a function from
// assignments of its *output variables* to ring values (int64/double), given
// bindings for its *input variables*. Aggregate queries, their deltas, map
// definitions and trigger right-hand sides are all expressions of this
// calculus:
//
//   Const(c)          -- weight c; no variables
//   ValTerm(t)        -- value factor t (arithmetic over variables)
//   Cmp(t1 op t2)     -- 0/1 predicate factor
//   Lift(x, t)        -- (x := t): binds x to t's value (or filters if bound)
//   Rel(R, [x...])    -- base relation atom; value = multiplicity; binds x...
//   MapRef(M, [x...]) -- materialized map atom; value = stored aggregate;
//                        binds unbound keys by slice iteration
//   Sum(e...)         -- ring addition (bag union)
//   Prod(e...)        -- ring multiplication (natural join on shared vars)
//   Neg(e)            -- ring negation
//   AggSum([g...], e) -- sums out all output vars of e not in g
//
// The delta of a query is again an expression of this calculus; recursive
// compilation (src/compiler) repeatedly takes deltas and extracts maps until
// the right-hand sides are constant-time.
#ifndef DBTOASTER_RING_EXPR_H_
#define DBTOASTER_RING_EXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/ring/term.h"
#include "src/sql/ast.h"

namespace dbtoaster::ring {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
  kConst,
  kValTerm,
  kCmp,
  kLift,
  kRel,
  kMapRef,
  kSum,
  kProd,
  kNeg,
  kAggSum,
};

struct Expr {
  ExprKind kind;

  Value constant;                  // kConst
  TermPtr term;                    // kValTerm, kLift definition
  sql::BinOp cmp_op = sql::BinOp::kEq;  // kCmp
  TermPtr cmp_lhs, cmp_rhs;        // kCmp
  std::string var;                 // kLift target variable
  std::string name;                // kRel relation / kMapRef map name
  std::vector<std::string> args;   // kRel / kMapRef argument variables
  std::vector<ExprPtr> children;   // kSum/kProd members; [0] for kNeg/kAggSum
  std::vector<std::string> group_vars;  // kAggSum

  // -- analysis ------------------------------------------------------------

  /// Output variables: those this expression can bind.
  std::set<std::string> OutVars() const;

  /// Input variables: those that must be bound by the environment.
  std::set<std::string> InVars() const;

  /// All variables (inputs and outputs).
  std::set<std::string> AllVars() const;

  /// Relation atom names appearing anywhere (incl. inside AggSum).
  void CollectRels(std::set<std::string>* out) const;
  bool HasRelAtoms() const;

  /// Map names referenced (MapRef atoms and term-level map reads).
  void CollectMapRefs(std::set<std::string>* out) const;

  /// Rename variables throughout (inputs, outputs, group vars).
  ExprPtr Rename(const std::map<std::string, std::string>& subst) const;

  /// Rewrite map-read terms throughout the expression (kCmp/kValTerm/kLift
  /// terms): placeholder map name -> replacement term.
  ExprPtr ReplaceMapReads(
      const std::map<std::string, TermPtr>& replacements) const;

  /// Rename map names throughout: MapRef atoms and term-level map reads.
  /// Used to resolve "$<query>_agg<i>" placeholders to registered maps.
  ExprPtr RenameMaps(const std::map<std::string, std::string>& names) const;

  std::string ToString() const;

  // -- constructors (with local constant folding) ---------------------------
  static ExprPtr Const(Value v);
  static ExprPtr One() { return Const(Value(int64_t{1})); }
  static ExprPtr Zero() { return Const(Value(int64_t{0})); }
  static ExprPtr ValTerm(TermPtr t);
  static ExprPtr Cmp(sql::BinOp op, TermPtr l, TermPtr r);
  static ExprPtr Lift(std::string var, TermPtr t);
  static ExprPtr Rel(std::string name, std::vector<std::string> args);
  static ExprPtr MapRef(std::string name, std::vector<std::string> args);
  static ExprPtr Sum(std::vector<ExprPtr> children);
  static ExprPtr Prod(std::vector<ExprPtr> children);
  static ExprPtr Neg(ExprPtr e);
  static ExprPtr AggSum(std::vector<std::string> group_vars, ExprPtr e);

  bool IsZero() const {
    return kind == ExprKind::kConst && constant.is_numeric() &&
           constant.IsZero();
  }
  bool IsOne() const {
    return kind == ExprKind::kConst && constant.is_int() &&
           constant.AsInt() == 1;
  }
};

/// Structural equality (no renaming).
bool ExprEquals(const Expr& a, const Expr& b);

/// Infer types of all variables bound by Rel atoms and Lifts, given relation
/// schemas through `rel_types` (relation name -> column types) and any
/// already-known variable types in `types` (e.g. event parameters).
/// Returns an error on conflicting inferences.
Status InferVarTypes(
    const Expr& e,
    const std::map<std::string, std::vector<Type>>& rel_types,
    VarTypes* types);

}  // namespace dbtoaster::ring

#endif  // DBTOASTER_RING_EXPR_H_
