#include "src/ring/expr.h"

#include <algorithm>
#include <cassert>

#include "src/common/str.h"

namespace dbtoaster::ring {

std::set<std::string> Expr::OutVars() const {
  std::set<std::string> out;
  switch (kind) {
    case ExprKind::kConst:
    case ExprKind::kValTerm:
    case ExprKind::kCmp:
      break;
    case ExprKind::kLift:
      out.insert(var);
      break;
    case ExprKind::kRel:
    case ExprKind::kMapRef:
      out.insert(args.begin(), args.end());
      break;
    case ExprKind::kNeg:
      return children[0]->OutVars();
    case ExprKind::kAggSum:
      out.insert(group_vars.begin(), group_vars.end());
      break;
    case ExprKind::kSum: {
      // The schema of a sum is the union of branch schemas; branches that do
      // not bind a variable contribute it only when the environment does.
      for (const ExprPtr& c : children) {
        auto cv = c->OutVars();
        out.insert(cv.begin(), cv.end());
      }
      break;
    }
    case ExprKind::kProd: {
      for (const ExprPtr& c : children) {
        auto cv = c->OutVars();
        out.insert(cv.begin(), cv.end());
      }
      break;
    }
  }
  return out;
}

std::set<std::string> Expr::InVars() const {
  std::set<std::string> in;
  switch (kind) {
    case ExprKind::kConst:
      break;
    case ExprKind::kValTerm:
      return term->Vars();
    case ExprKind::kCmp: {
      auto l = cmp_lhs->Vars();
      auto r = cmp_rhs->Vars();
      in.insert(l.begin(), l.end());
      in.insert(r.begin(), r.end());
      break;
    }
    case ExprKind::kLift:
      return term->Vars();
    case ExprKind::kRel:
    case ExprKind::kMapRef:
      break;
    case ExprKind::kNeg:
      return children[0]->InVars();
    case ExprKind::kAggSum: {
      in = children[0]->InVars();
      // Group vars that the child cannot bind must come from outside.
      auto out = children[0]->OutVars();
      for (const std::string& g : group_vars) {
        if (!out.count(g)) in.insert(g);
      }
      break;
    }
    case ExprKind::kSum: {
      for (const ExprPtr& c : children) {
        auto ci = c->InVars();
        in.insert(ci.begin(), ci.end());
      }
      break;
    }
    case ExprKind::kProd: {
      std::set<std::string> bound;
      // A product satisfies a factor's inputs with any other factor's
      // outputs (the evaluator orders factors accordingly).
      for (const ExprPtr& c : children) {
        auto co = c->OutVars();
        bound.insert(co.begin(), co.end());
      }
      for (const ExprPtr& c : children) {
        for (const std::string& v : c->InVars()) {
          if (!bound.count(v)) in.insert(v);
        }
      }
      break;
    }
  }
  return in;
}

std::set<std::string> Expr::AllVars() const {
  std::set<std::string> all = OutVars();
  auto in = InVars();
  all.insert(in.begin(), in.end());
  return all;
}

void Expr::CollectRels(std::set<std::string>* out) const {
  if (kind == ExprKind::kRel) {
    out->insert(name);
    return;
  }
  for (const ExprPtr& c : children) c->CollectRels(out);
}

bool Expr::HasRelAtoms() const {
  std::set<std::string> rels;
  CollectRels(&rels);
  return !rels.empty();
}

void Expr::CollectMapRefs(std::set<std::string>* out) const {
  if (kind == ExprKind::kMapRef) out->insert(name);
  if (term) term->CollectMapReads(out);
  if (cmp_lhs) cmp_lhs->CollectMapReads(out);
  if (cmp_rhs) cmp_rhs->CollectMapReads(out);
  for (const ExprPtr& c : children) c->CollectMapRefs(out);
}

namespace {
std::vector<std::string> RenameVarList(
    const std::vector<std::string>& vars,
    const std::map<std::string, std::string>& subst) {
  std::vector<std::string> out;
  out.reserve(vars.size());
  for (const std::string& v : vars) {
    auto it = subst.find(v);
    out.push_back(it == subst.end() ? v : it->second);
  }
  return out;
}
}  // namespace

ExprPtr Expr::Rename(const std::map<std::string, std::string>& subst) const {
  switch (kind) {
    case ExprKind::kConst:
      return Const(constant);
    case ExprKind::kValTerm:
      return ValTerm(term->Rename(subst));
    case ExprKind::kCmp:
      return Cmp(cmp_op, cmp_lhs->Rename(subst), cmp_rhs->Rename(subst));
    case ExprKind::kLift: {
      auto it = subst.find(var);
      return Lift(it == subst.end() ? var : it->second, term->Rename(subst));
    }
    case ExprKind::kRel:
      return Rel(name, RenameVarList(args, subst));
    case ExprKind::kMapRef:
      return MapRef(name, RenameVarList(args, subst));
    case ExprKind::kNeg:
      return Neg(children[0]->Rename(subst));
    case ExprKind::kAggSum:
      return AggSum(RenameVarList(group_vars, subst),
                    children[0]->Rename(subst));
    case ExprKind::kSum: {
      std::vector<ExprPtr> cs;
      cs.reserve(children.size());
      for (const ExprPtr& c : children) cs.push_back(c->Rename(subst));
      return Sum(std::move(cs));
    }
    case ExprKind::kProd: {
      std::vector<ExprPtr> cs;
      cs.reserve(children.size());
      for (const ExprPtr& c : children) cs.push_back(c->Rename(subst));
      return Prod(std::move(cs));
    }
  }
  assert(false);
  return nullptr;
}

ExprPtr Expr::ReplaceMapReads(
    const std::map<std::string, TermPtr>& replacements) const {
  switch (kind) {
    case ExprKind::kConst:
    case ExprKind::kRel:
    case ExprKind::kMapRef: {
      auto e = std::make_shared<Expr>(*this);
      return e;
    }
    case ExprKind::kValTerm:
      return ValTerm(term->ReplaceMapReads(replacements));
    case ExprKind::kCmp:
      return Cmp(cmp_op, cmp_lhs->ReplaceMapReads(replacements),
                 cmp_rhs->ReplaceMapReads(replacements));
    case ExprKind::kLift:
      return Lift(var, term->ReplaceMapReads(replacements));
    case ExprKind::kNeg:
      return Neg(children[0]->ReplaceMapReads(replacements));
    case ExprKind::kAggSum:
      return AggSum(group_vars, children[0]->ReplaceMapReads(replacements));
    case ExprKind::kSum:
    case ExprKind::kProd: {
      std::vector<ExprPtr> cs;
      cs.reserve(children.size());
      for (const ExprPtr& c : children) {
        cs.push_back(c->ReplaceMapReads(replacements));
      }
      return kind == ExprKind::kSum ? Sum(std::move(cs))
                                    : Prod(std::move(cs));
    }
  }
  assert(false);
  return nullptr;
}

ExprPtr Expr::RenameMaps(
    const std::map<std::string, std::string>& names) const {
  switch (kind) {
    case ExprKind::kConst:
    case ExprKind::kRel:
      return std::make_shared<Expr>(*this);
    case ExprKind::kMapRef: {
      auto it = names.find(name);
      return MapRef(it == names.end() ? name : it->second, args);
    }
    case ExprKind::kValTerm:
      return ValTerm(term->RenameMaps(names));
    case ExprKind::kCmp:
      return Cmp(cmp_op, cmp_lhs->RenameMaps(names),
                 cmp_rhs->RenameMaps(names));
    case ExprKind::kLift:
      return Lift(var, term->RenameMaps(names));
    case ExprKind::kNeg:
      return Neg(children[0]->RenameMaps(names));
    case ExprKind::kAggSum:
      return AggSum(group_vars, children[0]->RenameMaps(names));
    case ExprKind::kSum:
    case ExprKind::kProd: {
      std::vector<ExprPtr> cs;
      cs.reserve(children.size());
      for (const ExprPtr& c : children) cs.push_back(c->RenameMaps(names));
      return kind == ExprKind::kSum ? Sum(std::move(cs)) : Prod(std::move(cs));
    }
  }
  assert(false);
  return nullptr;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kConst:
      return constant.ToString();
    case ExprKind::kValTerm:
      return "{" + term->ToString() + "}";
    case ExprKind::kCmp:
      return "[" + cmp_lhs->ToString() + " " + sql::BinOpName(cmp_op) + " " +
             cmp_rhs->ToString() + "]";
    case ExprKind::kLift:
      return "(" + var + " := " + term->ToString() + ")";
    case ExprKind::kRel:
    case ExprKind::kMapRef: {
      std::string s = name + (kind == ExprKind::kRel ? "(" : "[");
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i];
      }
      s += kind == ExprKind::kRel ? ")" : "]";
      return s;
    }
    case ExprKind::kNeg:
      return "-(" + children[0]->ToString() + ")";
    case ExprKind::kAggSum: {
      std::string s = "AggSum([" + Join({group_vars.begin(), group_vars.end()}, ", ") + "], ";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
    case ExprKind::kSum: {
      std::string s = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += " + ";
        s += children[i]->ToString();
      }
      s += ")";
      return s;
    }
    case ExprKind::kProd: {
      std::string s = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) s += " * ";
        s += children[i]->ToString();
      }
      s += ")";
      return s;
    }
  }
  return "?";
}

ExprPtr Expr::Const(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::ValTerm(TermPtr t) {
  if (t->IsConst()) return Const(t->constant);
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kValTerm;
  e->term = std::move(t);
  return e;
}

ExprPtr Expr::Cmp(sql::BinOp op, TermPtr l, TermPtr r) {
  assert(sql::IsComparison(op));
  if (l->IsConst() && r->IsConst()) {
    bool truth = false;
    const Value& a = l->constant;
    const Value& b = r->constant;
    switch (op) {
      case sql::BinOp::kEq: truth = a == b; break;
      case sql::BinOp::kNeq: truth = a != b; break;
      case sql::BinOp::kLt: truth = a < b; break;
      case sql::BinOp::kLe: truth = a <= b; break;
      case sql::BinOp::kGt: truth = a > b; break;
      case sql::BinOp::kGe: truth = a >= b; break;
      case sql::BinOp::kLike:
        truth = a.is_string() && b.is_string() &&
                LikeMatch(a.AsString(), b.AsString());
        break;
      case sql::BinOp::kNotLike:
        truth = a.is_string() && b.is_string() &&
                !LikeMatch(a.AsString(), b.AsString());
        break;
      default: break;
    }
    return truth ? One() : Zero();
  }
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCmp;
  e->cmp_op = op;
  e->cmp_lhs = std::move(l);
  e->cmp_rhs = std::move(r);
  return e;
}

ExprPtr Expr::Lift(std::string var, TermPtr t) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLift;
  e->var = std::move(var);
  e->term = std::move(t);
  return e;
}

ExprPtr Expr::Rel(std::string name, std::vector<std::string> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kRel;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::MapRef(std::string name, std::vector<std::string> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kMapRef;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Sum(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  for (ExprPtr& c : children) {
    if (c->IsZero()) continue;
    if (c->kind == ExprKind::kSum) {
      flat.insert(flat.end(), c->children.begin(), c->children.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return Zero();
  if (flat.size() == 1) return flat[0];
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSum;
  e->children = std::move(flat);
  return e;
}

ExprPtr Expr::Prod(std::vector<ExprPtr> children) {
  std::vector<ExprPtr> flat;
  Value const_part(int64_t{1});
  bool any_const = false;
  for (ExprPtr& c : children) {
    if (c->IsZero()) return Zero();
    if (c->kind == ExprKind::kConst) {
      const_part = Value::Mul(const_part, c->constant);
      any_const = true;
      continue;
    }
    if (c->kind == ExprKind::kProd) {
      for (const ExprPtr& g : c->children) {
        if (g->kind == ExprKind::kConst) {
          const_part = Value::Mul(const_part, g->constant);
          any_const = true;
        } else {
          flat.push_back(g);
        }
      }
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (any_const && const_part.is_numeric() && const_part.IsZero()) {
    return Zero();
  }
  bool const_is_one = const_part.is_int() && const_part.AsInt() == 1;
  if (!const_is_one) {
    flat.insert(flat.begin(), Const(const_part));
  }
  if (flat.empty()) return One();
  if (flat.size() == 1) return flat[0];
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kProd;
  e->children = std::move(flat);
  return e;
}

ExprPtr Expr::Neg(ExprPtr e) {
  if (e->kind == ExprKind::kConst) return Const(Value::Neg(e->constant));
  if (e->kind == ExprKind::kNeg) return e->children[0];
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kNeg;
  out->children.push_back(std::move(e));
  return out;
}

ExprPtr Expr::AggSum(std::vector<std::string> group_vars, ExprPtr e) {
  if (e->IsZero()) return Zero();
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kAggSum;
  out->group_vars = std::move(group_vars);
  out->children.push_back(std::move(e));
  return out;
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kConst:
      return a.constant == b.constant &&
             a.constant.is_string() == b.constant.is_string();
    case ExprKind::kValTerm:
      return TermEquals(*a.term, *b.term);
    case ExprKind::kCmp:
      return a.cmp_op == b.cmp_op && TermEquals(*a.cmp_lhs, *b.cmp_lhs) &&
             TermEquals(*a.cmp_rhs, *b.cmp_rhs);
    case ExprKind::kLift:
      return a.var == b.var && TermEquals(*a.term, *b.term);
    case ExprKind::kRel:
    case ExprKind::kMapRef:
      return a.name == b.name && a.args == b.args;
    case ExprKind::kAggSum:
      if (a.group_vars != b.group_vars) return false;
      return ExprEquals(*a.children[0], *b.children[0]);
    case ExprKind::kNeg:
      return ExprEquals(*a.children[0], *b.children[0]);
    case ExprKind::kSum:
    case ExprKind::kProd: {
      if (a.children.size() != b.children.size()) return false;
      for (size_t i = 0; i < a.children.size(); ++i) {
        if (!ExprEquals(*a.children[i], *b.children[i])) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

void CollectAtoms(const Expr& e, std::vector<const Expr*>* rels,
                  std::vector<const Expr*>* lifts) {
  if (e.kind == ExprKind::kRel) {
    rels->push_back(&e);
  } else if (e.kind == ExprKind::kLift) {
    lifts->push_back(&e);
  }
  for (const ExprPtr& c : e.children) CollectAtoms(*c, rels, lifts);
}

}  // namespace

Status InferVarTypes(
    const Expr& e,
    const std::map<std::string, std::vector<Type>>& rel_types,
    VarTypes* types) {
  std::vector<const Expr*> rels, lifts;
  CollectAtoms(e, &rels, &lifts);
  // Pass 1: relation atoms fix the types of their argument variables.
  for (const Expr* rel : rels) {
    auto it = rel_types.find(rel->name);
    if (it == rel_types.end()) {
      return Status::NotFound("unknown relation in expression: " + rel->name);
    }
    if (it->second.size() != rel->args.size()) {
      return Status::Internal("relation atom arity mismatch: " +
                              rel->ToString());
    }
    for (size_t i = 0; i < rel->args.size(); ++i) {
      auto [pos, inserted] = types->emplace(rel->args[i], it->second[i]);
      if (!inserted && pos->second != it->second[i]) {
        // Int/date aliasing is fine; anything else is a conflict.
        bool compat = IsNumeric(pos->second) == IsNumeric(it->second[i]);
        if (!compat) {
          return Status::TypeError("conflicting types for variable " +
                                   rel->args[i]);
        }
      }
    }
  }
  // Pass 2: lifts type their target from their term; terms may depend on
  // other lifts, so iterate to a fixpoint. Lifts whose terms reference
  // variables never typed are left out (the variable is unused downstream or
  // a later type query reports it precisely).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Expr* lift : lifts) {
      if (types->count(lift->var)) continue;
      auto t = lift->term->TypeOf(*types);
      if (t.ok()) {
        types->emplace(lift->var, t.value());
        progress = true;
      }
    }
  }
  return Status::OK();
}

}  // namespace dbtoaster::ring
