// Value-level terms of the map algebra: arithmetic over variables, constants
// and map reads. Terms appear inside ring expressions as multiplicative
// value factors (ValTerm), comparison operands (Cmp) and lift definitions
// (Lift), and as the result-view's output expressions.
#ifndef DBTOASTER_RING_TERM_H_
#define DBTOASTER_RING_TERM_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/sql/ast.h"

namespace dbtoaster::ring {

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// Variable typing environment (variable name -> column type).
using VarTypes = std::map<std::string, Type>;

/// Immutable value-level term.
struct Term {
  enum class Kind : uint8_t {
    kConst,
    kVar,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMapRead,  ///< read map `map_name` at key (args...); 0 when absent
    kFunc1,    ///< built-in unary scalar function over `lhs` (EXTRACT)
  };

  Kind kind;
  Value constant;                 // kConst
  std::string var;                // kVar
  TermPtr lhs, rhs;               // kAdd..kDiv; kFunc1 argument in lhs
  std::string map_name;           // kMapRead
  std::vector<TermPtr> args;      // kMapRead key terms
  sql::FuncKind func = sql::FuncKind::kExtractYear;  // kFunc1

  /// All variables mentioned (including inside map-read keys).
  void CollectVars(std::set<std::string>* out) const;
  std::set<std::string> Vars() const;

  /// All map names read (transitively).
  void CollectMapReads(std::set<std::string>* out) const;

  /// Result type under `types`; numeric promotion as in SQL.
  Result<Type> TypeOf(const VarTypes& types) const;

  /// Substitute variables by other variables (renaming).
  TermPtr Rename(const std::map<std::string, std::string>& subst) const;

  /// Substitute variables by terms (used by lift unification).
  TermPtr Substitute(const std::map<std::string, TermPtr>& subst) const;

  /// Rename map names in kMapRead nodes; entries may also replace the key
  /// argument list (used to resolve subquery placeholders).
  TermPtr RenameMaps(const std::map<std::string, std::string>& names) const;

  /// Replace kMapRead nodes wholesale: placeholder name -> replacement term
  /// builder result. Used when a placeholder read needs different keys.
  TermPtr ReplaceMapReads(
      const std::map<std::string, TermPtr>& replacements) const;

  std::string ToString() const;

  bool IsConst() const { return kind == Kind::kConst; }
  bool IsVar() const { return kind == Kind::kVar; }

  // -- constructors --------------------------------------------------------
  static TermPtr Const(Value v);
  static TermPtr Int(int64_t v) { return Const(Value(v)); }
  static TermPtr Var(std::string name);
  static TermPtr Add(TermPtr l, TermPtr r);
  static TermPtr Sub(TermPtr l, TermPtr r);
  static TermPtr Mul(TermPtr l, TermPtr r);
  static TermPtr Div(TermPtr l, TermPtr r);
  static TermPtr MapRead(std::string map_name, std::vector<TermPtr> args);
  static TermPtr Func1(sql::FuncKind func, TermPtr arg);
};

/// Evaluate a built-in unary function over a concrete value.
Value EvalFunc1(sql::FuncKind func, const Value& arg);

/// Structural equality.
bool TermEquals(const Term& a, const Term& b);

}  // namespace dbtoaster::ring

#endif  // DBTOASTER_RING_TERM_H_
