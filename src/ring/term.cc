#include "src/ring/term.h"

#include <cassert>

namespace dbtoaster::ring {

void Term::CollectVars(std::set<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->insert(var);
      return;
    case Kind::kMapRead:
      for (const TermPtr& a : args) a->CollectVars(out);
      return;
    case Kind::kFunc1:
      lhs->CollectVars(out);
      return;
    default:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
  }
}

std::set<std::string> Term::Vars() const {
  std::set<std::string> out;
  CollectVars(&out);
  return out;
}

void Term::CollectMapReads(std::set<std::string>* out) const {
  switch (kind) {
    case Kind::kConst:
    case Kind::kVar:
      return;
    case Kind::kMapRead:
      out->insert(map_name);
      for (const TermPtr& a : args) a->CollectMapReads(out);
      return;
    case Kind::kFunc1:
      lhs->CollectMapReads(out);
      return;
    default:
      lhs->CollectMapReads(out);
      rhs->CollectMapReads(out);
  }
}

Result<Type> Term::TypeOf(const VarTypes& types) const {
  switch (kind) {
    case Kind::kConst:
      if (constant.is_string()) return Type::kString;
      return constant.is_double() ? Type::kDouble : Type::kInt;
    case Kind::kVar: {
      auto it = types.find(var);
      if (it == types.end()) {
        return Status::Internal("untyped variable in term: " + var);
      }
      return it->second;
    }
    case Kind::kMapRead:
      // Map value types are tracked by the program; reads are numeric.
      // The compiler records precise types in MapDecl; for term typing we
      // conservatively return kDouble unless told otherwise via `types`
      // carrying an entry "@<map>".
      {
        auto it = types.find("@" + map_name);
        if (it != types.end()) return it->second;
        return Type::kDouble;
      }
    case Kind::kDiv:
      return Type::kDouble;
    case Kind::kFunc1: {
      DBT_ASSIGN_OR_RETURN(Type a, lhs->TypeOf(types));
      if (!IsNumeric(a)) {
        return Status::TypeError("EXTRACT over non-date operand: " +
                                 ToString());
      }
      return Type::kInt;
    }
    default: {
      DBT_ASSIGN_OR_RETURN(Type l, lhs->TypeOf(types));
      DBT_ASSIGN_OR_RETURN(Type r, rhs->TypeOf(types));
      if (!IsNumeric(l) || !IsNumeric(r)) {
        return Status::TypeError("arithmetic over non-numeric term: " +
                                 ToString());
      }
      return PromoteNumeric(l, r);
    }
  }
}

TermPtr Term::Rename(const std::map<std::string, std::string>& subst) const {
  switch (kind) {
    case Kind::kConst:
      return Const(constant);
    case Kind::kVar: {
      auto it = subst.find(var);
      return Var(it == subst.end() ? var : it->second);
    }
    case Kind::kMapRead: {
      std::vector<TermPtr> new_args;
      new_args.reserve(args.size());
      for (const TermPtr& a : args) new_args.push_back(a->Rename(subst));
      return MapRead(map_name, std::move(new_args));
    }
    case Kind::kFunc1:
      return Func1(func, lhs->Rename(subst));
    default: {
      TermPtr l = lhs->Rename(subst);
      TermPtr r = rhs->Rename(subst);
      auto t = std::make_shared<Term>();
      t->kind = kind;
      t->lhs = std::move(l);
      t->rhs = std::move(r);
      return t;
    }
  }
}

TermPtr Term::Substitute(const std::map<std::string, TermPtr>& subst) const {
  switch (kind) {
    case Kind::kConst:
      return Const(constant);
    case Kind::kVar: {
      auto it = subst.find(var);
      return it == subst.end() ? Var(var) : it->second;
    }
    case Kind::kMapRead: {
      std::vector<TermPtr> new_args;
      new_args.reserve(args.size());
      for (const TermPtr& a : args) new_args.push_back(a->Substitute(subst));
      return MapRead(map_name, std::move(new_args));
    }
    case Kind::kFunc1:
      return Func1(func, lhs->Substitute(subst));
    default: {
      TermPtr l = lhs->Substitute(subst);
      TermPtr r = rhs->Substitute(subst);
      auto t = std::make_shared<Term>();
      t->kind = kind;
      t->lhs = std::move(l);
      t->rhs = std::move(r);
      return t;
    }
  }
}

TermPtr Term::RenameMaps(
    const std::map<std::string, std::string>& names) const {
  switch (kind) {
    case Kind::kConst:
      return Const(constant);
    case Kind::kVar:
      return Var(var);
    case Kind::kMapRead: {
      std::vector<TermPtr> new_args;
      new_args.reserve(args.size());
      for (const TermPtr& a : args) new_args.push_back(a->RenameMaps(names));
      auto it = names.find(map_name);
      return MapRead(it == names.end() ? map_name : it->second,
                     std::move(new_args));
    }
    case Kind::kFunc1:
      return Func1(func, lhs->RenameMaps(names));
    default: {
      auto t = std::make_shared<Term>();
      t->kind = kind;
      t->lhs = lhs->RenameMaps(names);
      t->rhs = rhs->RenameMaps(names);
      return t;
    }
  }
}

TermPtr Term::ReplaceMapReads(
    const std::map<std::string, TermPtr>& replacements) const {
  switch (kind) {
    case Kind::kConst:
      return Const(constant);
    case Kind::kVar:
      return Var(var);
    case Kind::kMapRead: {
      auto it = replacements.find(map_name);
      if (it != replacements.end()) return it->second;
      std::vector<TermPtr> new_args;
      new_args.reserve(args.size());
      for (const TermPtr& a : args) {
        new_args.push_back(a->ReplaceMapReads(replacements));
      }
      return MapRead(map_name, std::move(new_args));
    }
    case Kind::kFunc1:
      return Func1(func, lhs->ReplaceMapReads(replacements));
    default: {
      auto t = std::make_shared<Term>();
      t->kind = kind;
      t->lhs = lhs->ReplaceMapReads(replacements);
      t->rhs = rhs->ReplaceMapReads(replacements);
      return t;
    }
  }
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kVar:
      return var;
    case Kind::kAdd:
      return "(" + lhs->ToString() + " + " + rhs->ToString() + ")";
    case Kind::kSub:
      return "(" + lhs->ToString() + " - " + rhs->ToString() + ")";
    case Kind::kMul:
      return "(" + lhs->ToString() + " * " + rhs->ToString() + ")";
    case Kind::kDiv:
      return "(" + lhs->ToString() + " / " + rhs->ToString() + ")";
    case Kind::kMapRead: {
      std::string s = map_name + "[";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->ToString();
      }
      s += "]";
      return s;
    }
    case Kind::kFunc1:
      return std::string(sql::FuncKindName(func)) + lhs->ToString() + ")";
  }
  return "?";
}

TermPtr Term::Const(Value v) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kConst;
  t->constant = std::move(v);
  return t;
}

TermPtr Term::Var(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kVar;
  t->var = std::move(name);
  return t;
}

namespace {
TermPtr MakeBinary(Term::Kind k, TermPtr l, TermPtr r) {
  auto t = std::make_shared<Term>();
  t->kind = k;
  t->lhs = std::move(l);
  t->rhs = std::move(r);
  return t;
}
}  // namespace

TermPtr Term::Add(TermPtr l, TermPtr r) {
  if (l->IsConst() && r->IsConst()) {
    return Const(Value::Add(l->constant, r->constant));
  }
  return MakeBinary(Kind::kAdd, std::move(l), std::move(r));
}
TermPtr Term::Sub(TermPtr l, TermPtr r) {
  if (l->IsConst() && r->IsConst()) {
    return Const(Value::Sub(l->constant, r->constant));
  }
  return MakeBinary(Kind::kSub, std::move(l), std::move(r));
}
TermPtr Term::Mul(TermPtr l, TermPtr r) {
  if (l->IsConst() && r->IsConst()) {
    return Const(Value::Mul(l->constant, r->constant));
  }
  return MakeBinary(Kind::kMul, std::move(l), std::move(r));
}
TermPtr Term::Div(TermPtr l, TermPtr r) {
  return MakeBinary(Kind::kDiv, std::move(l), std::move(r));
}

Value EvalFunc1(sql::FuncKind func, const Value& arg) {
  const int64_t days = arg.AsInt();
  switch (func) {
    case sql::FuncKind::kExtractYear: return Value(ExtractYear(days));
    case sql::FuncKind::kExtractMonth: return Value(ExtractMonth(days));
    case sql::FuncKind::kExtractDay: return Value(ExtractDay(days));
  }
  return Value(int64_t{0});
}

TermPtr Term::Func1(sql::FuncKind func, TermPtr arg) {
  if (arg->IsConst() && arg->constant.is_numeric()) {
    return Const(EvalFunc1(func, arg->constant));
  }
  auto t = std::make_shared<Term>();
  t->kind = Kind::kFunc1;
  t->func = func;
  t->lhs = std::move(arg);
  return t;
}

TermPtr Term::MapRead(std::string map_name, std::vector<TermPtr> args) {
  auto t = std::make_shared<Term>();
  t->kind = Kind::kMapRead;
  t->map_name = std::move(map_name);
  t->args = std::move(args);
  return t;
}

bool TermEquals(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Term::Kind::kConst:
      return a.constant == b.constant &&
             a.constant.is_string() == b.constant.is_string();
    case Term::Kind::kVar:
      return a.var == b.var;
    case Term::Kind::kMapRead:
      if (a.map_name != b.map_name || a.args.size() != b.args.size()) {
        return false;
      }
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (!TermEquals(*a.args[i], *b.args[i])) return false;
      }
      return true;
    case Term::Kind::kFunc1:
      return a.func == b.func && TermEquals(*a.lhs, *b.lhs);
    default:
      return TermEquals(*a.lhs, *b.lhs) && TermEquals(*a.rhs, *b.rhs);
  }
}

}  // namespace dbtoaster::ring
