#include "src/catalog/catalog.h"

#include "src/common/str.h"

namespace dbtoaster {

Schema::Schema(std::string name,
               std::vector<std::pair<std::string, Type>> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(const std::string& column) const {
  std::string up = ToUpper(column);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (ToUpper(columns_[i].first) == up) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string s = name_ + "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].first;
    s += " ";
    s += TypeName(columns_[i].second);
  }
  s += ")";
  return s;
}

Status Catalog::AddRelation(Schema schema) {
  std::string key = ToUpper(schema.name());
  if (by_name_.count(key)) {
    return Status::InvalidArgument("duplicate relation: " + schema.name());
  }
  // Column names must be unique within the relation.
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    for (size_t j = i + 1; j < schema.num_columns(); ++j) {
      if (ToUpper(schema.column_name(i)) == ToUpper(schema.column_name(j))) {
        return Status::InvalidArgument(
            "duplicate column '" + schema.column_name(i) + "' in relation " +
            schema.name());
      }
    }
  }
  by_name_[key] = relations_.size();
  relations_.push_back(std::move(schema));
  return Status::OK();
}

Status Catalog::AddRelation(const sql::CreateTableStmt& stmt) {
  return AddRelation(Schema(stmt.name, stmt.columns));
}

const Schema* Catalog::FindRelation(const std::string& name) const {
  auto it = by_name_.find(ToUpper(name));
  if (it == by_name_.end()) return nullptr;
  return &relations_[it->second];
}

std::string Catalog::ToString() const {
  std::string s;
  for (const Schema& r : relations_) {
    s += r.ToString();
    s += "\n";
  }
  return s;
}

}  // namespace dbtoaster
