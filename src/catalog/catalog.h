// Catalog: relation schemas and name resolution.
#ifndef DBTOASTER_CATALOG_CATALOG_H_
#define DBTOASTER_CATALOG_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/sql/ast.h"

namespace dbtoaster {

/// Schema of one relation.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name,
         std::vector<std::pair<std::string, Type>> columns);

  const std::string& name() const { return name_; }
  size_t num_columns() const { return columns_.size(); }
  const std::string& column_name(size_t i) const { return columns_[i].first; }
  Type column_type(size_t i) const { return columns_[i].second; }
  const std::vector<std::pair<std::string, Type>>& columns() const {
    return columns_;
  }

  /// Index of `column` (case-insensitive), or nullopt.
  std::optional<size_t> FindColumn(const std::string& column) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, Type>> columns_;
};

/// All relations known to a compilation / execution session.
class Catalog {
 public:
  /// Register a relation; fails on duplicate names (case-insensitive).
  Status AddRelation(Schema schema);

  /// Convenience: register from a parsed CREATE TABLE.
  Status AddRelation(const sql::CreateTableStmt& stmt);

  const Schema* FindRelation(const std::string& name) const;
  bool HasRelation(const std::string& name) const {
    return FindRelation(name) != nullptr;
  }

  /// All schemas in registration order.
  const std::vector<Schema>& relations() const { return relations_; }

  std::string ToString() const;

 private:
  std::vector<Schema> relations_;
  std::map<std::string, size_t> by_name_;  ///< upper-cased name -> index
};

}  // namespace dbtoaster

#endif  // DBTOASTER_CATALOG_CATALOG_H_
